"""Integration tests for virtual-accelerator leases end to end.

ARM admission -> daemon slice attach -> tenant-scoped operations ->
preemption -> replay recovery, over the full simulated message plane.
"""

import numpy as np
import pytest

from repro.core import (
    FailoverConfig,
    VirtualAcceleratorHandle,
)
from repro.errors import AcceleratorFault, AllocationError, MiddlewareError


class TestLeaseLifecycle:
    def test_register_valloc_release(self, cluster, sess):
        client = cluster.arm_client(0)
        sess.call(client.register_tenant("alice", weight=2.0, priority=1,
                                         mem_quota_bytes=1 << 20))
        grant = sess.call(client.valloc("alice"))
        vac = grant["vac"]
        assert isinstance(vac, VirtualAcceleratorHandle)
        assert vac.tenant == "alice"
        assert grant["share"] == 2.0
        assert grant["mem_quota"] == 1 << 20
        assert cluster.arm.lease_count() == 1
        snap = sess.call(client.status())
        assert snap[vac.ac_id]["leases"] == 1
        out = sess.call(client.vrelease(vac))
        assert out == {"revoked": False}
        assert cluster.arm.lease_count() == 0

    def test_valloc_unknown_tenant_rejected(self, cluster, sess):
        client = cluster.arm_client(0)
        with pytest.raises(MiddlewareError, match="unknown tenant"):
            sess.call(client.valloc("nobody"))

    def test_quota_denied_immediately_even_with_wait(self, cluster, sess):
        client = cluster.arm_client(0)
        sess.call(client.register_tenant("alice"))  # max_vaccels=1
        sess.call(client.valloc("alice"))
        with pytest.raises(AllocationError, match="max_vaccels"):
            sess.call(client.valloc("alice", wait=True))

    def test_vrelease_wrong_tenant_denied(self, cluster, sess):
        client = cluster.arm_client(0)
        sess.call(client.register_tenant("alice"))
        sess.call(client.register_tenant("bob"))
        grant = sess.call(client.valloc("alice"))
        stolen = VirtualAcceleratorHandle(
            vac_id=grant["vac"].vac_id, ac_id=grant["vac"].ac_id,
            daemon_rank=grant["vac"].daemon_rank, tenant="bob")
        with pytest.raises(AllocationError, match="belongs to"):
            sess.call(client.vrelease(stolen))

    def test_leased_device_not_whole_device_allocatable(self, cluster, sess):
        client = cluster.arm_client(0)
        sess.call(client.register_tenant("alice"))
        grant = sess.call(client.valloc("alice"))
        with pytest.raises(AllocationError):
            sess.call(client.alloc(count=3, wait=False))
        sess.call(client.vrelease(grant["vac"]))
        handles = sess.call(client.alloc(count=3, wait=False))
        assert len(handles) == 3


class TestTenantAccelerator:
    def test_scoped_roundtrip_bit_identical(self, cluster, sess):
        client = cluster.arm_client(0)
        sess.call(client.register_tenant("alice"))
        ac = sess.call(cluster.tenant(0, "alice"))
        data = np.arange(512, dtype=np.float64)
        addr = sess.call(ac.mem_alloc(data.nbytes))
        sess.call(ac.memcpy_h2d(addr, data))
        sess.call(ac.kernel_create("dscal"))
        sess.call(ac.kernel_run("dscal",
                                {"x": addr, "n": 512, "alpha": 2.0}))
        back = sess.call(ac.memcpy_d2h(addr, data.nbytes))
        np.testing.assert_array_equal(back, data * 2.0)
        sess.call(ac.release_lease())
        assert cluster.arm.lease_count() == 0

    def test_mem_quota_enforced_through_daemon(self, cluster, sess):
        client = cluster.arm_client(0)
        sess.call(client.register_tenant("alice", mem_quota_bytes=4096))
        ac = sess.call(cluster.tenant(0, "alice"))
        sess.call(ac.mem_alloc(4096))
        with pytest.raises(MiddlewareError):
            sess.call(ac.mem_alloc(1))
        sess.call(ac.release_lease())

    def test_cross_tenant_free_denied(self, cluster, sess):
        client = cluster.arm_client(0)
        # Both leases land on the same device (slots spread most-free
        # first, so pin them by exhausting a single-slot config).
        sess.call(client.register_tenant("alice"))
        sess.call(client.register_tenant("bob"))
        ac_a = sess.call(cluster.tenant(0, "alice"))
        ac_b = sess.call(cluster.tenant(0, "bob"))
        addr = sess.call(ac_a.current.mem_alloc(1024))
        with pytest.raises(MiddlewareError):
            # Address belongs to alice's partition (or to no partition on
            # bob's device) — either way bob must not be able to free it.
            sess.call(ac_b.current.mem_free(addr))
        sess.call(ac_a.release_lease())
        sess.call(ac_b.release_lease())


class TestPreemption:
    def _setup(self, cluster, sess):
        cluster.arm.admission.slots_per_device = 1  # 3 slots total
        client = cluster.arm_client(0)
        for name, prio in (("a", 0), ("b", 0), ("c", 0), ("vip", 5)):
            sess.call(client.register_tenant(name, priority=prio))
        return client

    def test_vip_preempts_oldest_lowest_priority(self, cluster, sess):
        client = self._setup(cluster, sess)
        grants = {t: sess.call(client.valloc(t)) for t in ("a", "b", "c")}
        vip = sess.call(client.valloc("vip"))
        assert cluster.arm.preemptions == 1
        # Victim is the oldest priority-0 lease: tenant a's.
        assert cluster.arm.admission.active_vaccels("a") == 0
        assert cluster.arm.admission.active_vaccels("b") == 1
        assert vip["vac"].ac_id == grants["a"]["vac"].ac_id

    def test_vrelease_idempotent_after_revocation(self, cluster, sess):
        client = self._setup(cluster, sess)
        grant_a = sess.call(client.valloc("a"))
        sess.call(client.valloc("b"))
        sess.call(client.valloc("c"))
        sess.call(client.valloc("vip"))
        out = sess.call(client.vrelease(grant_a["vac"]))
        assert out == {"revoked": True}
        with pytest.raises(AllocationError, match="unknown"):
            sess.call(client.vrelease(grant_a["vac"]))  # one-shot

    def test_revoked_slice_faults_without_failover(self, cluster, sess):
        client = self._setup(cluster, sess)
        ac_a = sess.call(cluster.tenant(0, "a",
                                        config=FailoverConfig(max_failovers=0)))
        sess.call(cluster.tenant(0, "b"))
        sess.call(cluster.tenant(0, "c"))
        sess.call(client.valloc("vip"))  # revokes a's slice
        with pytest.raises(AcceleratorFault):
            sess.call(ac_a.mem_alloc(1024))

    def test_preempted_tenant_replays_bit_identically(self, cluster):
        eng = cluster.engine
        sess = cluster.session()
        client = self._setup(cluster, sess)
        data = np.linspace(0.0, 1.0, 256)
        outcome = {}

        def victim():
            ac = yield from cluster.tenant(
                0, "a", config=FailoverConfig(wait_for_replacement=True))
            outcome["first_vac"] = ac.handle.vac_id
            addr = yield from ac.mem_alloc(data.nbytes)
            yield from ac.memcpy_h2d(addr, data)
            # Preemption lands here; the next op reacquires and replays.
            yield eng.timeout(0.01)
            back = yield from ac.memcpy_d2h(addr, data.nbytes)
            outcome["data"] = back
            outcome["recoveries"] = ac.preemptions_survived
            outcome["second_vac"] = ac.handle.vac_id
            yield from ac.release_lease()

        def other_tenants():
            ac_b = yield from cluster.tenant(0, "b")
            yield from cluster.tenant(0, "c")
            yield eng.timeout(0.002)
            yield from sess_free_vip()
            # b releasing unblocks the victim's queued reacquire.
            yield eng.timeout(0.002)
            yield from ac_b.release_lease()

        def sess_free_vip():
            yield from client.valloc("vip")

        pv = eng.process(victim())
        eng.process(other_tenants())
        eng.run(until=pv)
        assert cluster.arm.preemptions == 1
        assert outcome["recoveries"] == 1
        assert outcome["second_vac"] != outcome["first_vac"]
        np.testing.assert_array_equal(outcome["data"], data)
