"""Unit tests for the asynchronous command-stream API and BATCH frames."""

import numpy as np
import pytest

from repro.core import (
    BATCHABLE_OPS,
    Op,
    Request,
    RetryPolicy,
    TAG_REQUEST,
    next_request_id,
    reply_tag,
)
from repro.errors import MiddlewareError


@pytest.fixture
def rig(cluster):
    sess = cluster.session()
    handles = sess.call(cluster.arm_client(0).alloc(count=2))
    acs = [cluster.remote(0, h) for h in handles]
    return cluster, sess, acs


class TestBatchFrame:
    def test_batch_rpc_one_round_trip(self, rig):
        cluster, sess, acs = rig
        ac = acs[0]
        daemon = cluster.daemons[ac.handle.ac_id]
        before = ac.requests
        subs = sess.call(ac.batch_rpc([
            (Op.MEM_ALLOC, {"nbytes": 4096}),
            (Op.MEM_ALLOC, {"nbytes": 8192}),
            (Op.KERNEL_CREATE, {"name": "dscal"}),
            (Op.PING, {}),
        ]))
        assert ac.requests == before + 1          # one frame on the wire
        assert daemon.stats.batches == 1
        assert daemon.stats.batched_ops == 4
        assert [s.ok for s in subs] == [True] * 4
        addr_a, addr_b = subs[0].value, subs[1].value
        assert addr_a != addr_b
        assert daemon.gpu.memory.used_bytes == 4096 + 8192

    def test_batch_rejects_unbatchable_op(self, rig):
        _, sess, acs = rig
        with pytest.raises(MiddlewareError):
            sess.call(acs[0].batch_rpc([(Op.MEMCPY_H2D, {})]))

    def test_transfers_are_not_batchable(self):
        assert Op.MEMCPY_H2D not in BATCHABLE_OPS
        assert Op.MEMCPY_D2H not in BATCHABLE_OPS
        assert Op.PEER_PUT not in BATCHABLE_OPS
        # A retried frame must be at-most-once.
        from repro.core import DEDUP_OPS, RETRYABLE_OPS
        assert Op.BATCH in RETRYABLE_OPS and Op.BATCH in DEDUP_OPS

    def test_failed_sub_op_aborts_rest_of_frame(self, rig):
        cluster, sess, acs = rig
        ac = acs[0]
        daemon = cluster.daemons[ac.handle.ac_id]
        used = daemon.gpu.memory.used_bytes
        subs = sess.call(ac.batch_rpc([
            (Op.KERNEL_CREATE, {"name": "no_such_kernel"}),
            (Op.MEM_ALLOC, {"nbytes": 4096}),
        ]))
        assert not subs[0].ok
        assert not subs[1].ok and "skipped" in subs[1].error
        assert daemon.gpu.memory.used_bytes == used  # alloc never ran

    def test_duplicate_batch_frame_replayed_not_reexecuted(self, rig):
        cluster, sess, acs = rig
        ac = acs[0]
        daemon = cluster.daemons[ac.handle.ac_id]
        rank = cluster.compute_rank(0)
        req_id = next_request_id()
        ops = [(Op.MEM_ALLOC.value, {"nbytes": 4096}),
               (Op.MEM_ALLOC.value, {"nbytes": 4096})]

        def exchange(attempt):
            req = Request(op=Op.BATCH, req_id=req_id, reply_to=0,
                          params={"ops": ops}, attempt=attempt)
            rreq = rank.irecv(source=ac.handle.daemon_rank,
                              tag=reply_tag(req_id))
            rank.isend(ac.handle.daemon_rank, TAG_REQUEST, req)
            yield rreq.done
            return rreq.message.payload

        first = sess.call(exchange(0))
        used = daemon.gpu.memory.used_bytes
        second = sess.call(exchange(1))
        # The whole frame is deduplicated: same addresses, no new memory.
        assert [s.value for s in second.value] == [s.value for s in first.value]
        assert daemon.gpu.memory.used_bytes == used
        assert daemon.stats.dedup_hits == 1
        assert daemon.stats.batches == 1


class TestStream:
    def test_ops_coalesce_and_preserve_order(self, rig):
        cluster, sess, acs = rig
        ac = acs[0]
        daemon = cluster.daemons[ac.handle.ac_id]

        def body():
            s = ac.stream()
            s.kernel_create("dscal")
            a = s.mem_alloc(8 * 32)
            s.memcpy_h2d(a, np.arange(32, dtype=np.float64))
            s.kernel_run("dscal", {"x": a, "n": 32, "alpha": 3.0})
            d = s.memcpy_d2h(a, 8 * 32)
            s.mem_free(a)
            yield from s.synchronize()
            return s, d

        s, d = sess.call(body())
        assert np.allclose(d.result(), np.arange(32) * 3.0)
        # create+alloc coalesced; h2d / run / d2h / free went solo.
        assert s.ops_issued == 6
        assert s.frames_issued == 5
        assert s.roundtrips_saved == 1
        assert daemon.stats.batches == 1 and daemon.stats.batched_ops == 2

    def test_future_params_resolve_across_frames(self, rig):
        _, sess, acs = rig
        ac = acs[0]

        def body():
            s = ac.stream()
            s.kernel_create("daxpy")
            x = s.mem_alloc(8 * 16)       # futures used as kernel params
            y = s.mem_alloc(8 * 16)
            s.memcpy_h2d(x, np.ones(16))
            s.memcpy_h2d(y, np.full(16, 2.0))
            s.kernel_run("daxpy", {"x": x, "y": y, "n": 16, "alpha": 10.0})
            d = s.memcpy_d2h(y, 8 * 16)
            yield from s.synchronize()
            return d

        d = sess.call(body())
        assert np.allclose(d.result(), 12.0)

    def test_max_batch_splits_long_runs(self, rig):
        _, sess, acs = rig
        ac = acs[0]

        def body():
            s = ac.stream(max_batch=4)
            for _ in range(10):
                s.ping()
            yield from s.synchronize()
            return s

        s = sess.call(body())
        assert s.ops_issued == 10
        # 10 pings at max_batch=4 -> frames of 4+4+2.
        assert s.frames_issued == 3
        assert s.ops_batched == 10

    def test_result_before_completion_raises(self, rig):
        _, sess, acs = rig

        def body():
            s = acs[0].stream()
            f = s.mem_alloc(64)
            with pytest.raises(MiddlewareError):
                f.result()
            yield from s.synchronize()
            return f

        f = sess.call(body())
        assert f.ok and isinstance(f.result(), int)

    def test_error_is_sticky_and_fails_queued_ops(self, rig):
        _, sess, acs = rig

        def body():
            s = acs[0].stream()
            good = s.mem_alloc(64)
            bad = s.kernel_create("no_such_kernel")
            tail = s.mem_alloc(64)
            with pytest.raises(MiddlewareError):
                yield from s.synchronize()
            return s, good, bad, tail

        s, good, bad, tail = sess.call(body())
        assert good.ok
        assert bad.done and not bad.ok
        assert tail.done and not tail.ok
        with pytest.raises(MiddlewareError):
            tail.result()
        with pytest.raises(MiddlewareError):  # stream refuses new work
            s.mem_alloc(64)

    def test_dependency_on_failed_future_aborts(self, rig):
        _, sess, acs = rig
        ac0, ac1 = acs

        def body():
            s0, s1 = ac0.stream(), ac1.stream()
            bad = s0.kernel_create("nope")
            # s1's op depends on a future that will fail on s0.
            dep = s1.mem_free(bad)
            with pytest.raises(MiddlewareError):
                yield from s0.synchronize()
            with pytest.raises(MiddlewareError):
                yield from s1.synchronize()
            return dep

        dep = sess.call(body())
        assert dep.done and not dep.ok

    def test_independent_streams_overlap(self, rig):
        cluster, sess, acs = rig
        params = {"A": 0, "B": 0, "C": 0, "m": 512, "n": 512, "k": 512}

        def timed(n_streams):
            def body():
                streams = [acs[i].stream() for i in range(n_streams)]
                for s in streams:
                    s.kernel_create("dgemm")
                    s.kernel_run("dgemm", params, real=False)
                t0 = cluster.engine.now
                for s in streams:
                    yield from s.synchronize()
                return cluster.engine.now - t0
            return sess.call(body())

        one = timed(1)
        two = timed(2)
        # Two accelerators' kernels overlap: far cheaper than serialized.
        assert two < 1.5 * one

    def test_kernel_set_args_stays_ordered_and_local(self, rig):
        _, sess, acs = rig
        ac = acs[0]

        def body():
            s = ac.stream()
            s.kernel_create("dscal")
            a = s.mem_alloc(8 * 8)
            s.memcpy_h2d(a, np.ones(8))
            s.kernel_set_args("dscal", {"x": a, "n": 8, "alpha": 4.0})
            s.kernel_run("dscal")    # uses the staged args
            d = s.memcpy_d2h(a, 8 * 8)
            yield from s.synchronize()
            return s, d

        s, d = sess.call(body())
        assert np.allclose(d.result(), 4.0)
        # set_args cost no round trip (6 ops, 5 remote, create+alloc in
        # one frame -> 4 frames).
        assert s.ops_issued == 6
        assert s.ops_issued_remote() == 5
        assert s.frames_issued == 4

    def test_stream_retry_is_at_most_once(self, rig):
        """A batch frame whose reply is delayed past the deadline is
        resent; the daemon replays it instead of re-allocating."""
        cluster, sess, acs = rig
        ac = cluster.remote(0, acs[0].handle,
                            retry=RetryPolicy(timeout_s=150e-6))
        daemon = cluster.daemons[ac.handle.ac_id]

        def body():
            s = ac.stream()
            a = s.mem_alloc(4096)
            b = s.mem_alloc(4096)
            yield from s.synchronize()
            return s, a, b

        s, a, b = sess.call(body())
        assert a.result() != b.result()
        assert daemon.gpu.memory.used_bytes == 2 * 4096
        # Whether or not the deadline fired, memory was allocated once.
        assert daemon.stats.batches >= 1


class TestBackendParity:
    def test_local_accelerator_stream(self):
        from repro.baselines import LocalAccelerator
        from repro.cluster import Cluster, paper_testbed
        cluster = Cluster(paper_testbed(n_compute=1, n_accelerators=0,
                                        local_gpus=True))
        node = cluster.compute_nodes[0]
        local = LocalAccelerator(cluster.engine, node.local_gpu, node.cpu)
        sess = cluster.session()

        def body():
            s = local.stream()
            assert not s.batching        # no RPC to batch
            s.kernel_create("dscal")
            a = s.mem_alloc(8 * 8)
            s.memcpy_h2d(a, np.full(8, 3.0))
            s.kernel_run("dscal", {"x": a, "n": 8, "alpha": 2.0})
            d = s.memcpy_d2h(a, 8 * 8)
            s.mem_free(a)
            yield from s.synchronize()
            return d

        d = sess.call(body())
        assert np.allclose(d.result(), 6.0)

    def test_resilient_accelerator_stream(self, rig):
        cluster, sess, acs = rig
        ra = cluster.resilient(0, acs[0].handle)

        def body():
            s = ra.stream()
            assert not s.batching        # per-op failover guard
            s.kernel_create("dscal")
            a = s.mem_alloc(8 * 8)
            s.memcpy_h2d(a, np.full(8, 1.0))
            s.kernel_run("dscal", {"x": a, "n": 8, "alpha": 7.0})
            d = s.memcpy_d2h(a, 8 * 8)
            yield from s.synchronize()
            return d

        d = sess.call(body())
        assert np.allclose(d.result(), 7.0)

    def test_stream_validates_max_batch(self, rig):
        with pytest.raises(MiddlewareError):
            rig[2][0].stream(max_batch=0)
