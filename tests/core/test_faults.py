"""Fault-injection tests: broken accelerators, recovery, containment."""

import numpy as np
import pytest

from repro.cluster import Cluster, paper_testbed
from repro.core import FaultInjector
from repro.errors import AcceleratorFault
from repro.mpisim import Phantom
from repro.units import MiB


@pytest.fixture
def rig():
    cluster = Cluster(paper_testbed(n_compute=1, n_accelerators=3))
    return cluster, cluster.session(), FaultInjector(cluster)


class TestBreak:
    def test_requests_fail_after_break(self, rig):
        cluster, sess, injector = rig
        handles = sess.call(cluster.arm_client(0).alloc(count=1))
        ac = cluster.remote(0, handles[0])
        injector.break_at(handles[0].ac_id, at_time=0.0)
        sess.sleep(0.001)
        with pytest.raises(AcceleratorFault):
            sess.call(ac.mem_alloc(100))

    def test_arm_registry_updated(self, rig):
        cluster, sess, injector = rig
        injector.break_at(1, at_time=0.0)
        sess.sleep(0.001)
        snap = cluster.arm.snapshot()
        assert snap[1]["state"] == "broken"
        assert cluster.arm.free_count() == 2

    def test_break_during_h2d_stream_drains(self, rig):
        # The daemon fails WHILE a pipelined transfer's blocks are in
        # flight: it must drain the data and reply BROKEN, not deadlock.
        cluster, sess, injector = rig
        handles = sess.call(cluster.arm_client(0).alloc(count=1))
        ac = cluster.remote(0, handles[0])
        ptr = sess.call(ac.mem_alloc(32 * MiB))
        # Break just before the next request is handled.
        injector.break_at(handles[0].ac_id, at_time=cluster.engine.now)
        with pytest.raises(AcceleratorFault):
            sess.call(ac.memcpy_h2d(ptr, Phantom(32 * MiB)))
        # The daemon is still responsive (to error out politely).
        with pytest.raises(AcceleratorFault):
            sess.call(ac.ping())

    def test_other_accelerators_unaffected(self, rig):
        cluster, sess, injector = rig
        handles = sess.call(cluster.arm_client(0).alloc(count=2))
        ac0 = cluster.remote(0, handles[0])
        ac1 = cluster.remote(0, handles[1])
        injector.break_at(handles[0].ac_id, at_time=0.0)
        sess.sleep(0.001)
        data = np.arange(100, dtype=np.float64)
        ptr = sess.call(ac1.mem_alloc(data.nbytes))
        sess.call(ac1.memcpy_h2d(ptr, data))
        out = sess.call(ac1.memcpy_d2h(ptr, data.nbytes))
        np.testing.assert_array_equal(out, data)

    def test_compute_node_survives_and_reallocates(self, rig):
        cluster, sess, injector = rig
        client = cluster.arm_client(0)
        handles = sess.call(client.alloc(count=1))
        ac = cluster.remote(0, handles[0])
        injector.break_at(handles[0].ac_id, at_time=0.0)
        sess.sleep(0.001)
        with pytest.raises(AcceleratorFault):
            sess.call(ac.mem_alloc(10))
        # Report + replace, like a production client library would.
        sess.call(client.report_break(handles[0].ac_id))
        new = sess.call(client.alloc(count=1))
        assert new[0].ac_id != handles[0].ac_id
        ac2 = cluster.remote(0, new[0])
        assert sess.call(ac2.ping()) == "pong"


class TestRepair:
    def test_repair_restores_service(self, rig):
        cluster, sess, injector = rig
        injector.break_at(2, at_time=0.0)
        injector.repair_at(2, at_time=0.01)
        sess.sleep(0.02)
        assert cluster.arm.free_count() == 3
        handles = sess.call(cluster.arm_client(0).alloc(count=3))
        acs = [cluster.remote(0, h) for h in handles]
        for ac in acs:
            assert sess.call(ac.ping()) == "pong"

    def test_delayed_break_fires_at_time(self, rig):
        cluster, sess, injector = rig
        injector.break_at(0, at_time=0.5)
        sess.sleep(0.1)
        assert not cluster.daemons[0].broken
        sess.sleep(0.5)
        assert cluster.daemons[0].broken
