"""Timeouts, retry/backoff, daemon dedup, and ARM-mediated failover."""

import numpy as np
import pytest

from repro.cluster import Cluster, paper_testbed
from repro.core import (
    DEDUP_OPS,
    FailoverConfig,
    FailoverPolicy,
    FaultInjector,
    Op,
    Request,
    RetryPolicy,
    RETRYABLE_OPS,
    TAG_REQUEST,
    next_request_id,
    reply_tag,
)
from repro.errors import AcceleratorFault, MiddlewareError, RequestTimeout
from repro.units import MiB


TIMEOUT_S = 1e-3


@pytest.fixture
def rig():
    cluster = Cluster(paper_testbed(n_compute=1, n_accelerators=3))
    return cluster, cluster.session(), FaultInjector(cluster)


def _victim(cluster, sess, retry=None, config=None):
    """Allocate one accelerator; return (handle, resilient wrapper)."""
    handles = sess.call(cluster.arm_client(0).alloc(count=1, job="t"))
    ra = cluster.resilient(0, handles[0], config=config, retry=retry)
    return handles[0], ra


class TestRetryPolicy:
    def test_backoff_schedule_is_deterministic(self):
        p = RetryPolicy(timeout_s=1e-3, backoff_base_s=100e-6, backoff_factor=2.0)
        assert [p.backoff_s(k) for k in range(4)] == [
            100e-6, 200e-6, 400e-6, 800e-6]

    def test_transfer_deadline_scales_with_size(self):
        p = RetryPolicy(timeout_s=1e-3, transfer_floor_Bps=100e6)
        assert p.transfer_timeout_s(0) == 1e-3
        assert p.transfer_timeout_s(100_000_000) == pytest.approx(1.001)
        assert RetryPolicy().transfer_timeout_s(1 * MiB) is None

    def test_validation(self):
        with pytest.raises(MiddlewareError):
            RetryPolicy(timeout_s=0.0)
        with pytest.raises(MiddlewareError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(MiddlewareError):
            RetryPolicy(backoff_factor=0.5)

    def test_op_classification(self):
        # Retried ops with side effects must be covered by the dedup cache.
        assert Op.PING in RETRYABLE_OPS and Op.PING not in DEDUP_OPS
        assert Op.MEM_ALLOC in RETRYABLE_OPS and Op.MEM_ALLOC in DEDUP_OPS
        assert Op.KERNEL_RUN not in RETRYABLE_OPS  # at most once


class TestTimeouts:
    def test_crashed_daemon_times_out_with_retries(self, rig):
        cluster, sess, injector = rig
        handles = sess.call(cluster.arm_client(0).alloc(count=1))
        ac = cluster.remote(0, handles[0],
                            retry=RetryPolicy(timeout_s=TIMEOUT_S))
        injector.crash_at(handles[0].ac_id, at_time=0.0)
        sess.sleep(1e-4)
        with pytest.raises(RequestTimeout):
            sess.call(ac.ping())
        # PING is retryable: every attempt was sent and every deadline fired.
        assert ac.requests == 4
        assert ac.timeouts == 4

    def test_retry_schedule_timing(self, rig):
        # Total wall time = 4 deadlines + the three backoff gaps, exactly
        # (no jitter -> deterministic simulations).
        cluster, sess, injector = rig
        handles = sess.call(cluster.arm_client(0).alloc(count=1))
        retry = RetryPolicy(timeout_s=TIMEOUT_S)
        ac = cluster.remote(0, handles[0], retry=retry)
        injector.crash_at(handles[0].ac_id, at_time=0.0)
        sess.sleep(1e-4)
        t0 = sess.now
        with pytest.raises(RequestTimeout):
            sess.call(ac.ping())
        expected = 4 * TIMEOUT_S + sum(retry.backoff_s(k) for k in range(3))
        assert sess.now - t0 == pytest.approx(expected, rel=1e-9)

    def test_non_retryable_op_single_attempt(self, rig):
        cluster, sess, injector = rig
        handles = sess.call(cluster.arm_client(0).alloc(count=1))
        ac = cluster.remote(0, handles[0],
                            retry=RetryPolicy(timeout_s=TIMEOUT_S))
        ptr = sess.call(ac.mem_alloc(64))
        ac.requests = ac.timeouts = 0
        injector.crash_at(handles[0].ac_id, at_time=sess.now)
        sess.sleep(1e-4)
        with pytest.raises(RequestTimeout):
            sess.call(ac.kernel_run("dscal", {"x": ptr, "n": 8, "alpha": 1.0},
                                    real=False))
        assert ac.requests == 1  # KERNEL_RUN is at-most-once: no resend

    def test_deadline_fires_mid_transfer(self, rig):
        # The bulk-data pipeline stalls when the daemon goes silent; the
        # transfer deadline, not a hang, is what the caller sees.
        cluster, sess, injector = rig
        handles = sess.call(cluster.arm_client(0).alloc(count=1))
        ac = cluster.remote(0, handles[0],
                            retry=RetryPolicy(timeout_s=TIMEOUT_S))
        ptr = sess.call(ac.mem_alloc(8 * MiB))
        injector.crash_at(handles[0].ac_id, at_time=sess.now)
        sess.sleep(1e-4)
        with pytest.raises(RequestTimeout):
            sess.call(ac.memcpy_d2h(ptr, 8 * MiB))

    def test_no_timeout_by_default(self, rig):
        # Default policy keeps the legacy wait-forever semantics.
        cluster, sess, _ = rig
        handles = sess.call(cluster.arm_client(0).alloc(count=1))
        ac = cluster.remote(0, handles[0])
        assert ac.retry.timeout_s is None
        assert sess.call(ac.ping()) is not None


class TestDaemonDedup:
    def _exchange(self, cluster, sess, dst, req):
        rank = cluster.compute_rank(0)

        def roundtrip():
            rreq = rank.irecv(source=dst, tag=reply_tag(req.req_id))
            rank.isend(dst, TAG_REQUEST, req)
            yield rreq.done
            return rreq.message.payload

        return sess.call(roundtrip())

    def test_duplicate_mem_alloc_replayed_not_reexecuted(self, rig):
        cluster, sess, _ = rig
        handles = sess.call(cluster.arm_client(0).alloc(count=1))
        daemon = cluster.daemons[handles[0].ac_id]
        req_id = next_request_id()
        req = Request(op=Op.MEM_ALLOC, req_id=req_id, reply_to=0,
                      params={"nbytes": 4096})
        first = self._exchange(cluster, sess, handles[0].daemon_rank, req)
        used = daemon.gpu.memory.used_bytes
        dup = Request(op=Op.MEM_ALLOC, req_id=req_id, reply_to=0,
                      params={"nbytes": 4096}, attempt=1)
        second = self._exchange(cluster, sess, handles[0].daemon_rank, dup)
        # Same address, no second allocation, and the hit is counted.
        assert second.value == first.value
        assert daemon.gpu.memory.used_bytes == used
        assert daemon.stats.dedup_hits == 1

    def test_distinct_req_ids_still_allocate(self, rig):
        cluster, sess, _ = rig
        handles = sess.call(cluster.arm_client(0).alloc(count=1))
        daemon = cluster.daemons[handles[0].ac_id]
        for _ in range(2):
            req = Request(op=Op.MEM_ALLOC, req_id=next_request_id(),
                          reply_to=0, params={"nbytes": 4096})
            self._exchange(cluster, sess, handles[0].daemon_rank, req)
        assert daemon.gpu.memory.used_bytes == 2 * 4096
        assert daemon.stats.dedup_hits == 0


class TestFailover:
    def test_fail_fast_surfaces_fault(self, rig):
        cluster, sess, injector = rig
        _, ra = _victim(cluster, sess,
                        config=FailoverConfig(policy=FailoverPolicy.FAIL_FAST))
        injector.break_at(ra.handle.ac_id, at_time=0.0)
        sess.sleep(1e-4)
        with pytest.raises(AcceleratorFault):
            sess.call(ra.ping())
        assert ra.failovers == 0

    def test_retry_same_after_repair(self, rig):
        cluster, sess, injector = rig
        _, ra = _victim(cluster, sess,
                        config=FailoverConfig(policy=FailoverPolicy.RETRY_SAME,
                                              retry_delay_s=2e-3))
        victim = ra.handle.ac_id
        injector.break_at(victim, at_time=0.0)
        injector.repair_at(victim, at_time=1e-3)  # fixed before the retry
        sess.sleep(1e-4)
        assert sess.call(ra.ping()) is not None
        assert ra.failovers == 1
        assert ra.handle.ac_id == victim  # same accelerator throughout

    def test_reallocate_replays_real_data(self, rig):
        cluster, sess, injector = rig
        handle, ra = _victim(cluster, sess, config=FailoverConfig(job="t"))
        data = np.arange(2048, dtype=np.float64)
        ptr = sess.call(ra.mem_alloc(data.nbytes))
        sess.call(ra.memcpy_h2d(ptr, data))
        injector.break_at(handle.ac_id, at_time=sess.now)
        sess.sleep(1e-4)
        # The very next operation triggers failover; the virtual address
        # survives and the replayed buffer round-trips bit-exactly.
        out = sess.call(ra.memcpy_d2h(ptr, data.nbytes))
        assert ra.failovers == 1
        assert ra.handle.ac_id != handle.ac_id
        assert np.array_equal(out, data)
        assert cluster.arm.snapshot()[handle.ac_id]["state"] == "broken"

    def test_reallocate_replays_kernels_and_translates_args(self, rig):
        cluster, sess, injector = rig
        handle, ra = _victim(cluster, sess, config=FailoverConfig(job="t"))
        data = np.ones(1024, dtype=np.float64)
        ptr = sess.call(ra.mem_alloc(data.nbytes))
        sess.call(ra.memcpy_h2d(ptr, data))
        sess.call(ra.kernel_create("dscal"))
        injector.break_at(handle.ac_id, at_time=sess.now)
        sess.sleep(1e-4)
        sess.call(ra.kernel_run("dscal",
                                {"x": ptr, "n": len(data), "alpha": 3.0}))
        out = sess.call(ra.memcpy_d2h(ptr, data.nbytes))
        assert ra.failovers == 1
        assert np.allclose(out, 3.0 * data)

    def test_crash_failover_via_timeout(self, rig):
        # The silent failure mode: detection happens through the request
        # deadline, then the same reallocate path recovers.
        cluster, sess, injector = rig
        handle, ra = _victim(cluster, sess,
                             retry=RetryPolicy(timeout_s=TIMEOUT_S),
                             config=FailoverConfig(job="t"))
        data = np.arange(512, dtype=np.float64)
        ptr = sess.call(ra.mem_alloc(data.nbytes))
        sess.call(ra.memcpy_h2d(ptr, data))
        injector.crash_at(handle.ac_id, at_time=sess.now)
        sess.sleep(1e-4)
        out = sess.call(ra.memcpy_d2h(ptr, data.nbytes))
        assert ra.failovers == 1
        assert ra.timeouts >= 1
        assert np.array_equal(out, data)

    def test_max_failovers_exhausted(self, rig):
        cluster, sess, injector = rig
        _, ra = _victim(cluster, sess,
                        config=FailoverConfig(max_failovers=0, job="t"))
        injector.break_at(ra.handle.ac_id, at_time=0.0)
        sess.sleep(1e-4)
        with pytest.raises(AcceleratorFault):
            sess.call(ra.ping())

    def test_run_guarded_reruns_whole_transaction(self, rig):
        cluster, sess, injector = rig
        handle, ra = _victim(cluster, sess, config=FailoverConfig(job="t"))
        data = np.full(256, 2.0)
        ptr = sess.call(ra.mem_alloc(data.nbytes))
        sess.call(ra.memcpy_h2d(ptr, data))
        sess.call(ra.kernel_create("dscal"))
        injector.break_at(handle.ac_id, at_time=sess.now)
        sess.sleep(1e-4)

        def transaction():
            # kernel result is checkpointed back; if a fault lands anywhere
            # in here the whole unit re-runs on the replayed upload.
            yield from ra.kernel_run("dscal",
                                     {"x": ptr, "n": len(data), "alpha": 5.0})
            out = yield from ra.memcpy_d2h(ptr, data.nbytes)
            yield from ra.memcpy_h2d(ptr, out)
            return out

        out = sess.call(ra.run_guarded(transaction))
        assert ra.failovers == 1
        assert np.allclose(out, 10.0)  # scaled exactly once, not twice


class TestHeartbeat:
    def test_heartbeat_evicts_crashed_accelerator(self, rig):
        cluster, sess, injector = rig
        injector.crash_at(1, at_time=0.0)
        cluster.arm.start_heartbeat(period_s=1e-3, timeout_s=0.5e-3, rounds=3)
        sess.sleep(0.01)
        assert cluster.arm.heartbeat_evictions == 1
        assert cluster.arm.snapshot()[1]["state"] == "broken"
        assert cluster.arm.free_count() == 2

    def test_heartbeat_leaves_healthy_pool_alone(self, rig):
        cluster, sess, _ = rig
        cluster.arm.start_heartbeat(period_s=1e-3, timeout_s=0.5e-3, rounds=3)
        sess.sleep(0.01)
        assert cluster.arm.heartbeat_evictions == 0
        assert cluster.arm.free_count() == 3


class TestSessionDeadline:
    def test_sync_call_timeout(self, rig):
        cluster, sess, _ = rig

        def slow():
            yield cluster.engine.timeout(1.0)
            return "done"

        with pytest.raises(RequestTimeout):
            sess.call(slow(), timeout_s=0.01)

        # The engine stays usable after the interrupted call.
        def quick():
            yield cluster.engine.timeout(1e-6)
            return "ok"

        assert sess.call(quick()) == "ok"

    def test_sync_call_completes_under_deadline(self, rig):
        cluster, sess, _ = rig

        def quick():
            yield cluster.engine.timeout(0.001)
            return 42

        assert sess.call(quick(), timeout_s=1.0) == 42
