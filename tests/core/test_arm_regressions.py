"""Regression tests for ARM allocation deadlocks, leaks, and accounting.

Each class pins one of the historical ARM bugs:

* oversized ``alloc(wait=True)`` queueing forever instead of failing,
* queued waiters stranded by pool shrinkage or ARM shutdown,
* the heartbeat leaking a posted irecv per missed PING round,
* ``utilization(elapsed=...)`` charging pre-window service to the window.
"""

import pytest

from repro.core import (
    FaultInjector,
    Op,
    Request,
    Status,
    TAG_ARM,
    next_request_id,
    reply_tag,
)
from repro.errors import AllocationError


def _shutdown_arm(cluster, sess):
    rank = cluster.compute_rank(0)
    req_id = next_request_id()
    rank.isend(cluster.arm_rank_index, TAG_ARM,
               Request(op=Op.SHUTDOWN, req_id=req_id, reply_to=rank.index))
    msg = sess.call(rank.recv(source=cluster.arm_rank_index,
                              tag=reply_tag(req_id)))
    assert msg.payload.status == Status.OK


class TestOversizedAlloc:
    def test_wait_alloc_beyond_pool_fails_fast(self, cluster, sess):
        # 4 devices from a 3-device pool can never be satisfied; with the
        # old FIFO this queued forever and deadlocked the simulation.
        client = cluster.arm_client(0)
        with pytest.raises(AllocationError, match="pool"):
            sess.call(client.alloc(count=4, wait=True))
        # The ARM is still alive and serving.
        handles = sess.call(client.alloc(count=1))
        assert len(handles) == 1

    def test_broken_devices_do_not_count_toward_capacity(self, cluster, sess):
        client = cluster.arm_client(0)
        sess.call(client.report_break(0))
        with pytest.raises(AllocationError, match="pool"):
            sess.call(client.alloc(count=3, wait=True))

    def test_queued_waiter_fails_when_pool_shrinks(self, cluster):
        eng = cluster.engine
        client = cluster.arm_client(0)
        outcome = {}

        def holder():
            yield from client.alloc(count=3, job="holder")

        def waiter():
            yield eng.timeout(0.001)
            try:
                # Satisfiable when queued (3-device pool)...
                yield from client.alloc(count=3, wait=True)
                outcome["waiter"] = "granted"
            except AllocationError as exc:
                outcome["waiter"] = str(exc)

        injector = FaultInjector(cluster)
        eng.process(holder())
        p = eng.process(waiter())
        # ...but the pool shrinks to 2 before anything is released.
        injector.break_at(0, at_time=0.002)
        eng.run(until=p)
        assert "shrank" in outcome["waiter"]

    def test_queued_waiter_survives_if_still_satisfiable(self, cluster):
        eng = cluster.engine
        client = cluster.arm_client(0)
        outcome = {}

        def holder():
            handles = yield from client.alloc(count=2, job="holder")
            yield eng.timeout(0.01)
            yield from client.release(handles)

        def waiter():
            yield eng.timeout(0.001)
            handles = yield from client.alloc(count=2, wait=True)
            outcome["granted"] = len(handles)

        injector = FaultInjector(cluster)
        eng.process(holder())
        p = eng.process(waiter())
        # The free third device breaks: pool 3 -> 2; count=2 still fits,
        # so the waiter stays queued and is granted on release.
        injector.break_at(2, at_time=0.002)
        eng.run(until=p)
        assert outcome["granted"] == 2


class TestShutdownDrain:
    def test_queued_alloc_waiter_answered_on_shutdown(self, cluster, sess):
        eng = cluster.engine
        client = cluster.arm_client(0)
        sess.call(client.alloc(count=3, job="hog"))
        outcome = {}

        def waiter():
            try:
                yield from client.alloc(count=1, wait=True)
                outcome["waiter"] = "granted"
            except AllocationError as exc:
                outcome["waiter"] = str(exc)

        p = eng.process(waiter())
        eng.run(until=eng.timeout(0.001))  # let the request queue up
        _shutdown_arm(cluster, sess)
        eng.run(until=p)
        assert "shutting down" in outcome["waiter"]

    def test_queued_valloc_waiter_answered_on_shutdown(self, cluster, sess):
        eng = cluster.engine
        cluster.arm.admission.slots_per_device = 1
        client = cluster.arm_client(0)
        sess.call(client.register_tenant("hog", max_vaccels=3))
        sess.call(client.register_tenant("late"))
        for _ in range(3):
            sess.call(client.valloc("hog"))
        outcome = {}

        def waiter():
            try:
                yield from client.valloc("late", wait=True)
                outcome["late"] = "granted"
            except AllocationError as exc:
                outcome["late"] = str(exc)

        p = eng.process(waiter())
        eng.run(until=eng.timeout(0.001))
        _shutdown_arm(cluster, sess)
        eng.run(until=p)
        assert "shutting down" in outcome["late"]


class TestHeartbeatCancel:
    def test_missed_rounds_do_not_leak_posted_recvs(self, cluster):
        eng = cluster.engine
        injector = FaultInjector(cluster)
        injector.crash_at(0, at_time=0.0)  # drops requests silently
        monitor = cluster.arm.start_heartbeat(period_s=1e-3,
                                              timeout_s=0.5e-3, rounds=3)
        eng.run(until=monitor)
        assert cluster.arm.heartbeat_evictions == 1
        assert cluster.arm.records[0].state.value == "broken"
        # The ARM rank's only posted receive is the serve loop's; the
        # missed PING's irecv was cancelled, not leaked.
        posted = cluster.comm._states[cluster.arm_rank_index].posted._entries
        assert len(posted) == 1


class TestUtilizationWindow:
    def test_pre_window_service_not_charged(self, cluster):
        eng = cluster.engine
        arm = cluster.arm
        r = arm.records[0]
        r._history.append((0.0, 10.0))
        r.assigned_seconds += 10.0
        eng.run(until=100.0)
        # Whole run: 10 busy seconds over 3 devices x 100 s.
        assert arm.utilization() == pytest.approx(10.0 / 300.0)
        # Window [50, 100]: the old interval must contribute nothing.
        assert arm.utilization(elapsed=50.0) == 0.0

    def test_partial_overlap_counts_only_overlap(self, cluster):
        eng = cluster.engine
        arm = cluster.arm
        arm.records[0]._history.append((40.0, 60.0))
        eng.run(until=100.0)
        # Window [50, 100] overlaps [40, 60] by 10 s.
        assert arm.utilization(elapsed=50.0) == pytest.approx(10.0 / 150.0)

    def test_inflight_assignment_clamped_to_window(self, cluster):
        eng = cluster.engine
        arm = cluster.arm
        eng.run(until=100.0)
        arm.records[1]._assigned_at = 0.0  # assigned the whole run
        # Window [90, 100]: contributes exactly the window, never more.
        assert arm.utilization(elapsed=10.0) == pytest.approx(10.0 / 30.0)

    def test_end_to_end_alloc_release_history(self, cluster, sess):
        eng = cluster.engine
        client = cluster.arm_client(0)
        handles = sess.call(client.alloc(count=1))
        eng.run(until=eng.timeout(5.0))
        sess.call(client.release(handles))
        r = cluster.arm.records[handles[0].ac_id]
        assert len(r._history) == 1
        start, end = r._history[0]
        assert end - start == pytest.approx(5.0, rel=0.01)
        # Long after release, a short trailing window sees an idle pool.
        eng.run(until=eng.timeout(50.0))
        assert cluster.arm.utilization(elapsed=1.0) == 0.0
