"""Tests for the accelerator resource manager and its client API."""

import pytest

from repro.core import AcceleratorHandle, AcceleratorState
from repro.errors import AllocationError


class TestStaticAllocation:
    def test_alloc_returns_exclusive_handles(self, cluster, sess):
        client = cluster.arm_client(0)
        handles = sess.call(client.alloc(count=2, job="job-a"))
        assert len(handles) == 2
        assert len({h.ac_id for h in handles}) == 2
        assert all(isinstance(h, AcceleratorHandle) for h in handles)
        assert cluster.arm.free_count() == 1

    def test_release_returns_to_pool(self, cluster, sess):
        client = cluster.arm_client(0)
        handles = sess.call(client.alloc(count=3))
        assert cluster.arm.free_count() == 0
        sess.call(client.release(handles))
        assert cluster.arm.free_count() == 3

    def test_alloc_nowait_fails_when_short(self, cluster, sess):
        client = cluster.arm_client(0)
        sess.call(client.alloc(count=2))
        with pytest.raises(AllocationError, match="free"):
            sess.call(client.alloc(count=2, wait=False))

    def test_alloc_zero_rejected(self, cluster, sess):
        client = cluster.arm_client(0)
        with pytest.raises(Exception):
            sess.call(client.alloc(count=0))

    def test_status_snapshot(self, cluster, sess):
        client = cluster.arm_client(0)
        handles = sess.call(client.alloc(count=1, job="named-job"))
        status = sess.call(client.status())
        assert status[handles[0].ac_id]["state"] == "assigned"
        assert status[handles[0].ac_id]["job"] == "named-job"
        free_states = [v["state"] for k, v in status.items()
                       if k != handles[0].ac_id]
        assert free_states == ["free", "free"]


class TestDynamicAllocation:
    def test_waiting_request_served_on_release(self, cluster2cn):
        eng = cluster2cn.engine
        c0 = cluster2cn.arm_client(0)
        c1 = cluster2cn.arm_client(1)
        order = []

        def job0():
            handles = yield from c0.alloc(count=2, job="first")
            order.append(("j0-got", eng.now))
            yield eng.timeout(5.0)
            yield from c0.release(handles)
            order.append(("j0-released", eng.now))

        def job1():
            yield eng.timeout(1.0)  # arrives while pool is empty
            handles = yield from c1.alloc(count=1, wait=True, job="second")
            order.append(("j1-got", eng.now))
            yield from c1.release(handles)

        p0 = eng.process(job0())
        p1 = eng.process(job1())
        eng.run(until=eng.all_of([p0, p1]))
        got1 = dict(order)["j1-got"]
        assert got1 >= 5.0  # waited for job0's release

    def test_fifo_queue_order(self, cluster):
        eng = cluster.engine
        client = cluster.arm_client(0)
        grants = []

        def holder():
            handles = yield from client.alloc(count=3)
            yield eng.timeout(10.0)
            yield from client.release(handles)

        def waiter(name, delay):
            yield eng.timeout(delay)
            h = yield from client.alloc(count=1, wait=True)
            grants.append((name, eng.now))
            yield from client.release(h)

        eng.process(holder())
        eng.process(waiter("early", 1.0))
        eng.process(waiter("late", 2.0))
        eng.run()
        assert grants[0][0] == "early"

    def test_ownership_enforced_on_release(self, cluster2cn):
        eng = cluster2cn.engine
        c0 = cluster2cn.arm_client(0)
        c1 = cluster2cn.arm_client(1)

        def thief():
            handles = yield from c0.alloc(count=1)
            # Rank 1 tries to release rank 0's accelerator.
            yield from c1.release(handles)

        p = eng.process(thief())
        with pytest.raises(AllocationError, match="owned by"):
            eng.run(until=p)

    def test_release_unassigned_denied(self, cluster, sess):
        client = cluster.arm_client(0)
        with pytest.raises(AllocationError, match="not assigned"):
            sess.call(client.release([AcceleratorHandle(0, 1)]))

    def test_duplicate_release_denied(self, cluster, sess):
        client = cluster.arm_client(0)
        handles = sess.call(client.alloc(count=2))
        with pytest.raises(AllocationError, match="duplicate"):
            sess.call(client.release([handles[0], handles[0]]))
        # The denied request must not have mutated the registry: both
        # accelerators are still assigned and a clean release works.
        assert cluster.arm.free_count() == 1
        sess.call(client.release(handles))
        assert cluster.arm.free_count() == 3

    def test_utilization_accounting(self, cluster):
        eng = cluster.engine
        client = cluster.arm_client(0)

        def job():
            handles = yield from client.alloc(count=3)
            yield eng.timeout(8.0)
            yield from client.release(handles)
            yield eng.timeout(2.0)

        eng.run(until=eng.process(job()))
        # 3 ACs busy for 8 of ~10 seconds -> ~80% mean utilization.
        assert cluster.arm.utilization() == pytest.approx(0.8, abs=0.05)

    def test_utilization_clamped_to_window(self, cluster):
        eng = cluster.engine
        client = cluster.arm_client(0)

        def job():
            yield from client.alloc(count=3)
            yield eng.timeout(10.0)

        eng.run(until=eng.process(job()))
        # In-flight assignments longer than the accounting window must be
        # clamped to it, never reported as >100% busy.
        assert cluster.arm.utilization(elapsed=5.0) == pytest.approx(1.0)
        assert cluster.arm.utilization() <= 1.0

    def test_utilization_partial_pool_in_flight(self, cluster):
        eng = cluster.engine
        client = cluster.arm_client(0)

        def job():
            yield from client.alloc(count=1)
            yield eng.timeout(6.0)

        eng.run(until=eng.process(job()))
        # One of three accelerators busy the whole window.
        assert cluster.arm.utilization(elapsed=3.0) == pytest.approx(1 / 3)


class TestBreakRepair:
    def test_broken_excluded_from_pool(self, cluster, sess):
        client = cluster.arm_client(0)
        sess.call(client.report_break(0))
        assert cluster.arm.free_count() == 2
        handles = sess.call(client.alloc(count=2))
        assert all(h.ac_id != 0 for h in handles)

    def test_repair_restores(self, cluster, sess):
        client = cluster.arm_client(0)
        sess.call(client.report_break(1))
        sess.call(client.report_repair(1))
        assert cluster.arm.free_count() == 3

    def test_repair_of_healthy_rejected(self, cluster, sess):
        client = cluster.arm_client(0)
        with pytest.raises(Exception, match="not broken"):
            sess.call(client.report_repair(2))

    def test_registry_state_enum(self, cluster, sess):
        client = cluster.arm_client(0)
        sess.call(client.report_break(0))
        assert cluster.arm.records[0].state == AcceleratorState.BROKEN
