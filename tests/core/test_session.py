"""Tests for the synchronous session driver."""

import pytest

from repro.core import SyncSession
from repro.core.api import run_parallel
from repro.errors import RequestTimeout, SimulationError
from repro.sim import Engine


@pytest.fixture
def eng():
    return Engine()


@pytest.fixture
def sess(eng):
    return SyncSession(eng)


class TestSyncSession:
    def test_call_returns_value(self, eng, sess):
        def op():
            yield eng.timeout(1.5)
            return "done"

        assert sess.call(op()) == "done"
        assert sess.now == 1.5

    def test_calls_accumulate_time(self, eng, sess):
        def op(d):
            yield eng.timeout(d)

        sess.call(op(1.0))
        sess.call(op(2.0))
        assert sess.now == 3.0

    def test_parallel_overlaps(self, eng, sess):
        def op(d, v):
            yield eng.timeout(d)
            return v

        results = sess.parallel([op(3.0, "a"), op(1.0, "b")])
        assert results == ["a", "b"]
        assert sess.now == 3.0

    def test_parallel_empty(self, sess):
        assert sess.parallel([]) == []

    def test_sleep(self, sess):
        sess.sleep(5.0)
        assert sess.now == 5.0

    def test_exception_propagates(self, eng, sess):
        def bad():
            yield eng.timeout(0.1)
            raise ValueError("op failed")

        with pytest.raises(ValueError, match="op failed"):
            sess.call(bad())

    def test_deadlocked_call_raises(self, eng, sess):
        ev = eng.event()

        def stuck():
            yield ev

        with pytest.raises(SimulationError, match="deadlock"):
            sess.call(stuck())


class TestCallDeadline:
    def test_call_within_deadline_returns_value(self, eng, sess):
        def op():
            yield eng.timeout(1.0)
            return "ok"

        assert sess.call(op(), timeout_s=2.0) == "ok"
        assert sess.now == 1.0

    def test_call_exceeding_deadline_raises(self, eng, sess):
        def slow():
            yield eng.timeout(10.0)
            return "never"

        with pytest.raises(RequestTimeout, match="deadline"):
            sess.call(slow(), name="slow-op", timeout_s=2.0)
        # The clock stopped at the deadline, not at the op's finish time.
        assert sess.now == pytest.approx(2.0)

    def test_expired_call_is_interrupted_not_leaked(self, eng, sess):
        cleaned = []

        def slow():
            try:
                yield eng.timeout(10.0)
            finally:
                cleaned.append(True)

        with pytest.raises(RequestTimeout):
            sess.call(slow(), timeout_s=1.0)
        assert cleaned == [True]
        # The engine stays usable after the interrupt.
        def op():
            yield eng.timeout(0.5)
            return 7

        assert sess.call(op()) == 7

    def test_failure_before_deadline_propagates(self, eng, sess):
        def bad():
            yield eng.timeout(0.1)
            raise ValueError("inner failure")

        with pytest.raises(ValueError, match="inner failure"):
            sess.call(bad(), timeout_s=5.0)


class TestParallelExceptionContext:
    def _branch(self, eng, delay, exc=None, value=None):
        def body():
            yield eng.timeout(delay)
            if exc is not None:
                raise exc
            return value
        return body()

    def test_parallel_names_failed_branch(self, eng, sess):
        with pytest.raises(ValueError) as ei:
            sess.parallel([
                self._branch(eng, 1.0, value="a"),
                self._branch(eng, 0.5, exc=ValueError("branch blew up")),
            ])
        notes = "".join(getattr(ei.value, "__notes__", [])) or str(ei.value)
        assert "run_parallel" in notes
        assert "branch 1" in notes

    def test_parallel_reports_multiple_failures(self, eng, sess):
        """The second failure used to vanish; now both are in the note."""
        with pytest.raises(ValueError) as ei:
            sess.parallel([
                self._branch(eng, 0.5, exc=ValueError("first")),
                self._branch(eng, 0.5, exc=KeyError("second")),
            ])
        notes = "".join(getattr(ei.value, "__notes__", [])) or str(ei.value)
        assert "first" in notes
        # Branches fail at the same instant; by the time the failure
        # surfaces, both are recorded instead of silently dropping one.
        assert "branch 0" in notes

    def test_run_parallel_generator_annotates_too(self, eng, sess):
        def driver():
            results = yield from run_parallel(eng, [
                self._branch(eng, 0.2, value=1),
                self._branch(eng, 0.1, exc=RuntimeError("dead gpu")),
            ])
            return results

        with pytest.raises(RuntimeError) as ei:
            sess.call(driver())
        notes = "".join(getattr(ei.value, "__notes__", [])) or str(ei.value)
        assert "branch 1" in notes and "dead gpu" in notes

    def test_parallel_success_unchanged(self, eng, sess):
        results = sess.parallel([
            self._branch(eng, 0.2, value="x"),
            self._branch(eng, 0.1, value="y"),
        ])
        assert results == ["x", "y"]

    def test_pre_yield_failure_is_annotated(self, eng, sess):
        def bad():
            raise LookupError("failed before first yield")
            yield  # pragma: no cover

        with pytest.raises(LookupError) as ei:
            sess.parallel([self._branch(eng, 0.1, value=1), bad()])
        notes = "".join(getattr(ei.value, "__notes__", [])) or str(ei.value)
        assert "branch 1" in notes
