"""Tests for the synchronous session driver."""

import pytest

from repro.core import SyncSession
from repro.errors import SimulationError
from repro.sim import Engine


@pytest.fixture
def eng():
    return Engine()


@pytest.fixture
def sess(eng):
    return SyncSession(eng)


class TestSyncSession:
    def test_call_returns_value(self, eng, sess):
        def op():
            yield eng.timeout(1.5)
            return "done"

        assert sess.call(op()) == "done"
        assert sess.now == 1.5

    def test_calls_accumulate_time(self, eng, sess):
        def op(d):
            yield eng.timeout(d)

        sess.call(op(1.0))
        sess.call(op(2.0))
        assert sess.now == 3.0

    def test_parallel_overlaps(self, eng, sess):
        def op(d, v):
            yield eng.timeout(d)
            return v

        results = sess.parallel([op(3.0, "a"), op(1.0, "b")])
        assert results == ["a", "b"]
        assert sess.now == 3.0

    def test_parallel_empty(self, sess):
        assert sess.parallel([]) == []

    def test_sleep(self, sess):
        sess.sleep(5.0)
        assert sess.now == 5.0

    def test_exception_propagates(self, eng, sess):
        def bad():
            yield eng.timeout(0.1)
            raise ValueError("op failed")

        with pytest.raises(ValueError, match="op failed"):
            sess.call(bad())

    def test_deadlocked_call_raises(self, eng, sess):
        ev = eng.event()

        def stuck():
            yield ev

        with pytest.raises(SimulationError, match="deadlock"):
            sess.call(stuck())
