"""Unit tests for the multi-tenant scheduling policy (no cluster needed)."""

import pytest

from repro.core import (
    AdmissionController,
    TenantSpec,
    WeightedFairQueue,
    jain_fairness,
)
from repro.errors import AllocationError


class TestTenantSpec:
    def test_defaults(self):
        spec = TenantSpec("t0")
        assert spec.weight == 1.0
        assert spec.priority == 0
        assert spec.max_vaccels == 1
        assert spec.mem_quota_bytes is None

    @pytest.mark.parametrize("kwargs", [
        {"tenant_id": ""},
        {"tenant_id": "t", "weight": 0.0},
        {"tenant_id": "t", "weight": -1.0},
        {"tenant_id": "t", "max_vaccels": 0},
        {"tenant_id": "t", "mem_quota_bytes": 0},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(AllocationError):
            TenantSpec(**kwargs)


class TestWeightedFairQueue:
    def test_fifo_within_tenant(self):
        q = WeightedFairQueue()
        for i in range(5):
            q.enqueue("a", 1.0, f"a{i}")
        assert [q.pop() for _ in range(5)] == [f"a{i}" for i in range(5)]

    def test_weighted_interleave(self):
        # Backlogged 2:1 weights: the heavy tenant drains twice as fast.
        q = WeightedFairQueue()
        for i in range(8):
            q.enqueue("heavy", 2.0, ("heavy", i))
            q.enqueue("light", 1.0, ("light", i))
        first6 = [q.pop() for _ in range(6)]
        heavy_share = sum(1 for t, _ in first6 if t == "heavy")
        assert heavy_share == 4  # 2/3 of dispatches

    def test_equal_weights_tie_break_by_submission(self):
        q = WeightedFairQueue()
        q.enqueue("a", 1.0, "a0")
        q.enqueue("b", 1.0, "b0")
        q.enqueue("c", 1.0, "c0")
        assert [q.pop(), q.pop(), q.pop()] == ["a0", "b0", "c0"]

    def test_no_starvation_for_light_tenant(self):
        # However heavy the competition, a weight-0.1 tenant's item pops
        # after a bounded number of dispatches (its tag is finite and the
        # system clock only moves forward).
        q = WeightedFairQueue()
        q.enqueue("tiny", 0.1, "tiny0")  # tag = 10.0
        for i in range(100):
            q.enqueue("big", 10.0, ("big", i))  # tags 0.1, 0.2, ...
        popped = []
        while True:
            item = q.pop()
            popped.append(item)
            if item == "tiny0":
                break
        assert len(popped) <= 101  # served, not starved

    def test_idle_tenant_cannot_bank_credit(self):
        # Drain "a" items, advancing the system clock; a newly active
        # tenant starts at the system clock, not at zero.
        q = WeightedFairQueue()
        for i in range(10):
            q.enqueue("a", 1.0, ("a", i))
        for _ in range(10):
            q.pop()
        q.enqueue("late", 1.0, ("late", 0))
        q.enqueue("a", 1.0, ("a", 10))
        # "late" must not leapfrog arbitrarily: both start at vtime=10,
        # and the tie breaks by submission order.
        assert q.pop() == ("late", 0)
        assert q.pop() == ("a", 10)

    def test_remove_token(self):
        q = WeightedFairQueue()
        q.enqueue("a", 1.0, "a0")
        tok = q.enqueue("a", 1.0, "a1")
        q.enqueue("a", 1.0, "a2")
        q.remove(tok)
        assert len(q) == 2
        assert q.items() == ["a0", "a2"]
        assert [q.pop(), q.pop()] == ["a0", "a2"]
        assert q.pop() is None

    def test_drain_returns_wfq_order(self):
        q = WeightedFairQueue()
        q.enqueue("slow", 1.0, "s0")
        q.enqueue("fast", 4.0, "f0")
        q.enqueue("fast", 4.0, "f1")
        assert q.drain() == ["f0", "f1", "s0"]
        assert len(q) == 0

    def test_rejects_non_positive_weight(self):
        q = WeightedFairQueue()
        with pytest.raises(AllocationError):
            q.enqueue("a", 0.0, "a0")


class TestAdmissionController:
    def _ctrl(self, slots=2):
        ctrl = AdmissionController(slots_per_device=slots)
        ctrl.register(TenantSpec("alice", weight=2.0, priority=1))
        ctrl.register(TenantSpec("bob", weight=1.0, priority=0))
        return ctrl

    def test_unknown_tenant_rejected(self):
        ctrl = self._ctrl()
        with pytest.raises(AllocationError, match="unknown tenant"):
            ctrl.tenant("mallory")

    def test_placement_spreads_deterministically(self):
        ctrl = self._ctrl(slots=2)
        healthy = [0, 1, 2]
        placed = []
        for _ in range(6):
            ac = ctrl.place(healthy)
            placed.append(ac)
            ctrl.grant("bob" if len(placed) % 2 else "alice", ac, 0, now=0.0)
        # Most-free-slots first, ties to the lowest ac_id.
        assert placed == [0, 1, 2, 0, 1, 2]
        assert ctrl.place(healthy) is None  # full

    def test_free_slots_accounting(self):
        ctrl = self._ctrl(slots=2)
        assert ctrl.free_slots([0, 1]) == 4
        ctrl.grant("alice", 0, 0, now=0.0)
        assert ctrl.free_slots([0, 1]) == 3
        assert ctrl.used_slots(0) == 1

    def test_find_victim_prefers_lowest_priority_oldest(self):
        ctrl = AdmissionController(slots_per_device=4)
        for name, prio in (("low_old", 0), ("low_new", 0), ("mid", 1)):
            ctrl.register(TenantSpec(name, priority=prio))
        l1 = ctrl.grant("low_old", 0, 0, now=1.0)
        ctrl.grant("low_new", 0, 0, now=2.0)
        ctrl.grant("mid", 0, 0, now=0.5)
        victim = ctrl.find_victim(priority=2)
        assert victim.vac_id == l1.vac_id  # lowest priority, oldest grant

    def test_no_victim_at_equal_priority(self):
        ctrl = self._ctrl()
        ctrl.grant("bob", 0, 0, now=0.0)  # priority 0
        assert ctrl.find_victim(priority=0) is None

    def test_end_accounts_weighted_service(self):
        ctrl = self._ctrl()
        la = ctrl.grant("alice", 0, 0, now=0.0)   # weight 2.0
        lb = ctrl.grant("bob", 0, 0, now=0.0)     # weight 1.0
        ctrl.end(la.vac_id, now=10.0)
        ctrl.end(lb.vac_id, now=10.0)
        assert ctrl.service_s["alice"] == pytest.approx(5.0)
        assert ctrl.service_s["bob"] == pytest.approx(10.0)

    def test_end_unknown_lease_raises(self):
        ctrl = self._ctrl()
        with pytest.raises(AllocationError):
            ctrl.end(999, now=0.0)

    def test_vac_ids_monotonic(self):
        ctrl = self._ctrl(slots=4)
        ids = [ctrl.grant("bob", 0, 0, now=0.0).vac_id for _ in range(3)]
        assert ids == sorted(ids)
        assert len(set(ids)) == 3


class TestJainFairness:
    def test_perfectly_even(self):
        assert jain_fairness([3.0, 3.0, 3.0]) == pytest.approx(1.0)

    def test_one_taker(self):
        assert jain_fairness([1.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)

    def test_empty_and_zero(self):
        assert jain_fairness([]) == 1.0
        assert jain_fairness([0.0, 0.0]) == 1.0
