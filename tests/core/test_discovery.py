"""Resource discovery, TTL eviction, autoscaling, and waiter-wake tests.

The pool-membership contract under test: the ARM builds its pool from
the daemons' discovery feed (joins, rejoins, graceful leaves, TTL
evictions of silent devices), the static-roster path is untouched, and —
the historical regression — every pool mutation wakes queued waiters
*exactly once*: a join must not double-reply a parked valloc, and a
leave must answer newly unsatisfiable waiters exactly once.
"""

import collections

import pytest

from repro.cluster import Cluster, paper_testbed
from repro.core import Autoscaler, AutoscalerPolicy, TenantSpec
from repro.core.arm import AcceleratorState
from repro.errors import AllocationError, ClusterConfigError

REPORT_PERIOD = 1e-4
TTL = 5e-4


def _discovery_cluster(n_ac: int = 3, initial: int | None = None,
                       slots: int = 1) -> Cluster:
    cluster = Cluster(paper_testbed(n_compute=1, n_accelerators=n_ac),
                      discovery=True, initial_accelerators=initial,
                      report_period_s=REPORT_PERIOD)
    cluster.arm.admission.slots_per_device = slots
    return cluster


def _reply_counter(arm) -> collections.Counter:
    """Spy on ``arm._reply``: how many replies each req_id received."""
    counts: collections.Counter = collections.Counter()
    original = arm._reply

    def spy(req, resp):
        counts[req.req_id] += 1
        original(req, resp)

    arm._reply = spy
    return counts


class TestDiscoveryFeed:
    def test_agents_populate_the_pool(self):
        cluster = _discovery_cluster(n_ac=3, initial=2)
        assert cluster.arm.records == {}  # empty until reports land
        cluster.run(until=5 * REPORT_PERIOD)
        assert sorted(cluster.arm.records) == [0, 1]
        assert not cluster.agents[2].active
        kinds = [kind for _, kind, _ in cluster.arm.pool_events]
        assert kinds[:2] == ["join", "join"]
        assert cluster.arm.joins == 2

    def test_known_healthy_reports_only_refresh_ttl(self):
        cluster = _discovery_cluster(n_ac=2, initial=2)
        cluster.run(until=20 * REPORT_PERIOD)
        # Dozens of re-reports, exactly two membership events.
        assert cluster.arm.joins == 2
        assert len(cluster.arm.pool_events) == 2

    def test_static_roster_is_never_swept(self):
        cluster = Cluster(paper_testbed(n_compute=1, n_accelerators=2))
        cluster.arm.enable_discovery(ttl_s=TTL, rounds=10)
        cluster.run()
        # Rostered devices have no _last_seen entry: nothing ages out.
        assert sorted(cluster.arm.records) == [0, 1]
        assert cluster.arm.ttl_evictions == 0

    def test_graceful_leave_removes_the_record_now(self):
        cluster = _discovery_cluster(n_ac=2, initial=2)
        cluster.run(until=3 * REPORT_PERIOD)
        cluster.agents[1].stop(reason="departed")
        cluster.run(until=cluster.engine.now + 3 * REPORT_PERIOD)
        assert sorted(cluster.arm.records) == [0]
        assert [k for _, k, _ in cluster.arm.pool_events].count(
            "leave:departed") == 1
        assert cluster.arm.leaves == 1

    def test_silent_leaver_ages_out_then_rejoins_fresh(self):
        cluster = _discovery_cluster(n_ac=2, initial=2)
        cluster.arm.enable_discovery(ttl_s=TTL, sweep_period_s=TTL / 2)
        cluster.run(until=3 * REPORT_PERIOD)
        cluster.agents[1].stop()  # no reason: no ARM_LEAVE
        cluster.run(until=cluster.engine.now + 3 * TTL)
        assert sorted(cluster.arm.records) == [0]
        assert cluster.arm.ttl_evictions == 1
        cluster.agents[1].start()
        cluster.run(until=cluster.engine.now + 3 * REPORT_PERIOD)
        assert sorted(cluster.arm.records) == [0, 1]
        # The record was forgotten, so the comeback is a fresh join.
        assert [k for _, k, _ in cluster.arm.pool_events][-1] == "join"

    def test_crashed_daemon_ages_out_and_rejoins_on_recovery(self):
        cluster = _discovery_cluster(n_ac=2, initial=2)
        cluster.arm.enable_discovery(ttl_s=TTL)
        cluster.run(until=3 * REPORT_PERIOD)
        cluster.daemons[1].crashed = True  # reports stop mid-flight
        cluster.run(until=cluster.engine.now + 3 * TTL)
        assert sorted(cluster.arm.records) == [0]
        cluster.daemons[1].crashed = False  # agent is still looping
        cluster.run(until=cluster.engine.now + 3 * REPORT_PERIOD)
        assert sorted(cluster.arm.records) == [0, 1]

    def test_unhealthy_report_breaks_then_healthy_rejoins(self):
        cluster = _discovery_cluster(n_ac=1, initial=1)
        cluster.run(until=3 * REPORT_PERIOD)
        cluster.daemons[0].broken = True
        cluster.run(until=cluster.engine.now + 3 * REPORT_PERIOD)
        assert cluster.arm.records[0].state == AcceleratorState.BROKEN
        assert "break" in [k for _, k, _ in cluster.arm.pool_events]
        cluster.daemons[0].broken = False
        cluster.run(until=cluster.engine.now + 3 * REPORT_PERIOD)
        assert cluster.arm.records[0].state == AcceleratorState.FREE
        assert [k for _, k, _ in cluster.arm.pool_events][-1] == "rejoin"

    def test_straggler_reports_late_and_ages_out(self):
        cluster = _discovery_cluster(n_ac=2, initial=2)
        cluster.arm.enable_discovery(ttl_s=TTL)
        cluster.run(until=3 * REPORT_PERIOD)
        # 50x slower: the next report lands far beyond the TTL.
        cluster.daemons[1].slow_factor = 50.0
        cluster.run(until=cluster.engine.now + 4 * TTL)
        assert sorted(cluster.arm.records) == [0]
        assert cluster.arm.ttl_evictions == 1
        cluster.daemons[1].slow_factor = 1.0
        cluster.run(until=cluster.engine.now + 60 * REPORT_PERIOD)
        assert sorted(cluster.arm.records) == [0, 1]

    def test_never_admits_a_device_reporting_unhealthy(self):
        cluster = _discovery_cluster(n_ac=1, initial=0)
        cluster.daemons[0].broken = True
        cluster.agents[0].start()
        cluster.run(until=5 * REPORT_PERIOD)
        assert cluster.arm.records == {}

    def test_initial_accelerators_out_of_range_rejected(self):
        with pytest.raises(ClusterConfigError, match="out of range"):
            Cluster(paper_testbed(n_compute=1, n_accelerators=2),
                    discovery=True, initial_accelerators=3)


class TestDiscoveryAgent:
    def test_report_contents_track_the_daemon(self):
        cluster = _discovery_cluster(n_ac=1, initial=1)
        cluster.run(until=3 * REPORT_PERIOD)
        agent = cluster.agents[0]
        first = agent.report()
        second = agent.report()
        assert first.healthy and first.version == "v1"
        assert second.seq == first.seq + 1
        cluster.daemons[0].broken = True
        assert not agent.report().healthy

    def test_paused_agent_skips_publishing(self):
        cluster = _discovery_cluster(n_ac=1, initial=1)
        cluster.run(until=3 * REPORT_PERIOD)
        agent = cluster.agents[0]
        agent.pause()
        sent = agent.reports_sent
        cluster.run(until=cluster.engine.now + 5 * REPORT_PERIOD)
        assert agent.reports_sent == sent
        agent.resume()
        cluster.run(until=cluster.engine.now + 3 * REPORT_PERIOD)
        assert agent.reports_sent > sent

    def test_crashed_daemon_sends_no_leave(self):
        cluster = _discovery_cluster(n_ac=1, initial=1)
        cluster.run(until=3 * REPORT_PERIOD)
        cluster.daemons[0].crashed = True
        cluster.agents[0].stop(reason="departed")  # cannot announce: dead
        cluster.run(until=cluster.engine.now + 3 * REPORT_PERIOD)
        assert sorted(cluster.arm.records) == [0]  # only TTL could remove it
        assert cluster.arm.leaves == 0


class TestExactlyOnceWaiterWake:
    """Pool mutations during join/leave wake queued waiters exactly once.

    Regression (see also tests/core/test_arm_regressions.py): the join
    path used to be able to answer a parked request twice — once from
    the drain triggered by the join and once from a racing release —
    which corrupted the client's reply stream.  The drains pop-then-
    reply atomically now; these tests pin that with a reply-counting spy
    on the ARM.
    """

    def test_join_wakes_queued_valloc_exactly_once(self):
        cluster = _discovery_cluster(n_ac=2, initial=1, slots=1)
        counts = _reply_counter(cluster.arm)
        sess = cluster.session()
        cluster.run(until=3 * REPORT_PERIOD)
        for t in ("t0", "t1"):
            cluster.arm.admission.register(TenantSpec(tenant_id=t))
        client = cluster.arm_client(0)
        grants = {}

        def lease(tenant):
            grants[tenant] = yield from client.valloc(tenant, wait=True)

        cluster.engine.process(lease("t0"))
        cluster.engine.process(lease("t1"))
        cluster.run(until=cluster.engine.now + 3 * REPORT_PERIOD)
        assert len(grants) == 1  # one slot total: the other is parked
        assert len(cluster.arm._vqueue) == 1
        cluster.agents[1].start()  # the join must wake the waiter
        cluster.run(until=cluster.engine.now + 5 * REPORT_PERIOD)
        assert len(grants) == 2
        placed = {g["vac"].ac_id for g in grants.values()}
        assert placed == {0, 1}
        assert counts and max(counts.values()) == 1, (
            f"a request was answered more than once: {counts}")
        # The ARM is still coherent and serving.
        sess.call(client.vrelease(grants["t0"]["vac"]))

    def test_join_wakes_queued_whole_device_alloc_exactly_once(self):
        cluster = _discovery_cluster(n_ac=2, initial=1)
        counts = _reply_counter(cluster.arm)
        cluster.run(until=3 * REPORT_PERIOD)
        client = cluster.arm_client(0)
        got = []

        def claim():
            handles = yield from client.alloc(count=1, wait=True)
            got.append(handles[0])

        cluster.engine.process(claim())
        cluster.engine.process(claim())
        cluster.run(until=cluster.engine.now + 3 * REPORT_PERIOD)
        assert len(got) == 1 and len(cluster.arm._wait_queue) == 1
        cluster.agents[1].start()
        cluster.run(until=cluster.engine.now + 5 * REPORT_PERIOD)
        assert {h.ac_id for h in got} == {0, 1}
        assert max(counts.values()) == 1

    def test_leave_fails_unsatisfiable_waiter_exactly_once(self):
        cluster = _discovery_cluster(n_ac=2, initial=2)
        counts = _reply_counter(cluster.arm)
        cluster.run(until=3 * REPORT_PERIOD)
        client = cluster.arm_client(0)
        sess = cluster.session()
        sess.call(client.alloc(count=1))  # one device busy
        failures = []

        def hopeless():
            try:
                yield from client.alloc(count=2, wait=True)
            except AllocationError as exc:
                failures.append(exc)

        cluster.engine.process(hopeless())
        cluster.run(until=cluster.engine.now + 3 * REPORT_PERIOD)
        assert len(cluster.arm._wait_queue) == 1
        # The free device departs: count=2 can never be satisfied now.
        cluster.agents[1].stop(reason="departed")
        cluster.run(until=cluster.engine.now + 3 * REPORT_PERIOD)
        assert len(failures) == 1
        assert max(counts.values()) == 1

    def test_eviction_of_last_device_answers_parked_valloc_once(self):
        cluster = _discovery_cluster(n_ac=1, initial=1, slots=1)
        cluster.arm.enable_discovery(ttl_s=TTL)
        counts = _reply_counter(cluster.arm)
        cluster.run(until=3 * REPORT_PERIOD)
        for t in ("t0", "t1"):
            cluster.arm.admission.register(TenantSpec(tenant_id=t))
        client = cluster.arm_client(0)
        sess = cluster.session()
        sess.call(client.valloc("t0"))  # the only slot
        outcomes = []

        def lease():
            try:
                outcomes.append((yield from client.valloc("t1", wait=True)))
            except AllocationError as exc:
                outcomes.append(exc)

        cluster.engine.process(lease())
        cluster.run(until=cluster.engine.now + 2 * REPORT_PERIOD)
        assert not outcomes and len(cluster.arm._vqueue) == 1
        # The only device goes silent and ages out: the parked waiter
        # must get exactly one UNAVAILABLE, not hang (and not get two).
        cluster.agents[0].pause()
        cluster.run(until=cluster.engine.now + 4 * TTL)
        assert cluster.arm.records == {}
        assert len(outcomes) == 1
        assert isinstance(outcomes[0], AllocationError)
        assert max(counts.values()) == 1


class TestAutoscaler:
    def _rig(self, n_ac=3, initial=1):
        cluster = _discovery_cluster(n_ac=n_ac, initial=initial, slots=1)
        policy = AutoscalerPolicy(min_nodes=1, max_nodes=n_ac,
                                  scale_up_backlog=1,
                                  scale_down_idle_rounds=2,
                                  period_s=2 * REPORT_PERIOD)
        scaler = Autoscaler(cluster.arm, list(cluster.agents.values()),
                            policy=policy)
        scaler.start()
        return cluster, scaler

    def test_backlog_triggers_scale_up(self):
        cluster, scaler = self._rig()
        cluster.run(until=3 * REPORT_PERIOD)
        for t in ("t0", "t1"):
            cluster.arm.admission.register(TenantSpec(tenant_id=t))
        client = cluster.arm_client(0)
        grants = {}

        def lease(tenant):
            grants[tenant] = yield from client.valloc(tenant, wait=True)

        cluster.engine.process(lease("t0"))
        cluster.engine.process(lease("t1"))
        cluster.run(until=cluster.engine.now + 20 * REPORT_PERIOD)
        assert scaler.scale_ups >= 1
        assert len(grants) == 2  # the backlog drained through the join

    def test_idle_pool_scales_down_to_min(self):
        cluster, scaler = self._rig(n_ac=3, initial=3)
        cluster.run(until=40 * REPORT_PERIOD)
        assert scaler.scale_downs >= 1
        assert len(cluster.arm.records) >= scaler.policy.min_nodes
        kinds = [k for _, k, _ in cluster.arm.pool_events]
        assert "leave:scale-down" in kinds

    def test_scale_down_spares_leased_devices(self):
        cluster, scaler = self._rig(n_ac=2, initial=2)
        cluster.run(until=3 * REPORT_PERIOD)
        cluster.arm.admission.register(TenantSpec(tenant_id="t0"))
        sess = cluster.session()
        client = cluster.arm_client(0)
        grant = sess.call(client.valloc("t0"))
        leased_ac = grant["vac"].ac_id
        cluster.run(until=cluster.engine.now + 40 * REPORT_PERIOD)
        # The idle device was retired; the leased one never is.
        assert leased_ac in cluster.arm.records
        assert len(cluster.arm.records) == 1
