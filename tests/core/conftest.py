"""Shared fixtures: a small paper-testbed cluster."""

import pytest

from repro.cluster import ClusterSpec, Cluster, paper_testbed


@pytest.fixture
def cluster():
    """1 compute node + 3 accelerators on QDR IB, like the paper's testbed."""
    return Cluster(paper_testbed(n_compute=1, n_accelerators=3))


@pytest.fixture
def cluster2cn():
    """2 compute nodes + 2 accelerators."""
    return Cluster(paper_testbed(n_compute=2, n_accelerators=2))


@pytest.fixture
def sess(cluster):
    return cluster.session()
