"""Property-style randomized tests over the deterministic harness.

Each seed generates a random alloc/copy/launch/free program and runs it
through the sync API, the stream API, and the local baseline.  The
properties under test:

* **equivalence** — all three paths produce results bit-identical to the
  host oracle (an optimization may change times, never values);
* **monotonicity** — every virtual-time trace is non-decreasing;
* **determinism** — re-running a seed reproduces the identical program,
  results, and event trace (the DES regression property);
* **economy** — the stream path never issues more request frames than
  logical remote ops (batching can only save round trips).
"""

import numpy as np
import pytest

from .harness import (
    RunOutcome,
    assert_equivalent,
    expected_results,
    generate_program,
    make_remote_rig,
    run_all_paths,
    run_stream,
    run_sync,
)

#: ≥ 20 seeds, per the acceptance criteria.
SEEDS = list(range(20)) + [101, 202, 12345]


@pytest.mark.parametrize("seed", SEEDS)
def test_all_paths_equivalent(seed):
    expected, outcomes, stream = run_all_paths(seed, n_ops=30)
    assert expected, "program produced no results to compare"
    assert_equivalent(expected, outcomes)
    # Batching can only remove round trips, never add them.
    assert stream.frames_issued <= stream.ops_issued_remote()


@pytest.mark.parametrize("seed", [3, 11, 17])
def test_same_seed_reproduces_identical_trace(seed):
    """Two fresh simulations of one seed are indistinguishable."""
    exp_a, out_a, _ = run_all_paths(seed, n_ops=30)
    exp_b, out_b, _ = run_all_paths(seed, n_ops=30)
    for a, b in zip(exp_a, exp_b):
        assert (a == b).all()
    for path in out_a:
        assert out_a[path].trace == out_b[path].trace, (
            f"{path}: virtual-time trace diverged between identical runs")
        for ra, rb in zip(out_a[path].results, out_b[path].results):
            assert (ra == rb).all()


def test_generate_program_is_pure_in_seed():
    a = generate_program(42, n_ops=25)
    b = generate_program(42, n_ops=25)
    assert len(a) == len(b)
    for ia, ib in zip(a, b):
        assert ia.op == ib.op
        for xa, xb in zip(ia.args, ib.args):
            if isinstance(xa, np.ndarray):
                assert (xa == xb).all()
            else:
                assert xa == xb


def test_programs_differ_across_seeds():
    assert [i.op for i in generate_program(1)] != \
        [i.op for i in generate_program(2)]


def test_oracle_matches_numpy_by_construction():
    prog = generate_program(9, n_ops=20)
    res = expected_results(prog)
    assert all(isinstance(r, np.ndarray) for r in res)
    assert all(r.dtype == np.float64 for r in res)


@pytest.mark.parametrize("sync_every", [1, 5])
def test_stream_with_periodic_barriers_still_equivalent(sync_every):
    """Pump restarts at barriers must not change numerics or ordering."""
    prog = generate_program(13, n_ops=30)
    expected = expected_results(prog)
    cluster, sess, ac = make_remote_rig()

    def body():
        out, stream = yield from run_stream(cluster.engine, ac, prog,
                                            sync_every=sync_every)
        return out, stream

    out, stream = sess.call(body())
    assert_equivalent(expected, {"stream": out})
    # A barrier after every op forbids coalescing beyond the pre-loop
    # prologue (the three kernel_creates plus the first instruction).
    if sync_every == 1:
        assert stream.ops_batched <= 4


def test_sync_trace_is_strictly_within_run():
    """The sync path's trace covers every instruction, in order."""
    prog = generate_program(4, n_ops=20)
    cluster, sess, ac = make_remote_rig()
    out = sess.call(run_sync(cluster.engine, ac, prog))
    assert isinstance(out, RunOutcome)
    assert len(out.trace) == len(prog)
    out.assert_monotonic()
