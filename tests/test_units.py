"""Tests for unit helpers and the exception hierarchy."""

import pytest

import repro
from repro import errors, units


class TestUnits:
    def test_constants(self):
        assert units.MiB == 1024 ** 2
        assert units.GiB == 1024 ** 3
        assert units.KiB == 1024

    def test_bandwidth_conversions_inverse(self):
        assert units.mib_per_s(units.bytes_per_s(2660.0)) == pytest.approx(2660.0)

    def test_gflops(self):
        assert units.gflops(2e9, 1.0) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            units.gflops(1.0, 0.0)

    def test_fmt_size(self):
        assert units.fmt_size(64 * units.MiB) == "64 MiB"
        assert units.fmt_size(128 * units.KiB) == "128 KiB"
        assert units.fmt_size(17) == "17 B"
        assert units.fmt_size(units.MiB + 1) == f"{units.MiB + 1} B"

    def test_fmt_time_scales(self):
        assert units.fmt_time(120.0) == "2.00 min"
        assert units.fmt_time(2.5) == "2.500 s"
        assert units.fmt_time(0.0035) == "3.500 ms"
        assert units.fmt_time(2.2e-6) == "2.20 us"


class TestErrors:
    def test_hierarchy(self):
        assert issubclass(errors.SimulationError, errors.ReproError)
        assert issubclass(errors.MPIError, errors.ReproError)
        assert issubclass(errors.DeviceMemoryError, errors.GPUError)
        assert issubclass(errors.ProtocolError, errors.MiddlewareError)
        assert issubclass(errors.AcceleratorFault, errors.ReproError)

    def test_interrupt_carries_cause(self):
        exc = errors.ProcessInterrupt(cause={"reason": "fault"})
        assert exc.cause == {"reason": "fault"}

    def test_version(self):
        assert repro.__version__


class TestTracer:
    def test_log_and_query(self):
        from repro.sim import Tracer
        tr = Tracer()
        tr.log(1.0, "net", "a->b", 100)
        tr.log(2.0, "gpu", "gpu0", "k1")
        tr.log(3.0, "net", "b->a", 50)
        assert len(tr.by_category("net")) == 2
        assert tr.by_actor("gpu0")[0].detail == "k1"
        assert tr.counts() == {"net": 2, "gpu": 1}

    def test_disabled_tracer_records_nothing(self):
        from repro.sim import Tracer
        tr = Tracer(enabled=False)
        tr.log(1.0, "net", "x")
        assert tr.records == []

    def test_category_filter(self):
        from repro.sim import Tracer
        tr = Tracer(categories=["gpu"])
        tr.log(1.0, "net", "x")
        tr.log(1.0, "gpu", "y")
        assert tr.counts() == {"gpu": 1}

    def test_clear(self):
        from repro.sim import Tracer
        tr = Tracer()
        tr.log(1.0, "a", "b")
        tr.clear()
        assert tr.records == []

    def test_cluster_tracing_integration(self):
        from repro.cluster import Cluster, paper_testbed
        from repro.sim import Tracer
        tracer = Tracer()
        cluster = Cluster(paper_testbed(n_compute=1, n_accelerators=1),
                          tracer=tracer)
        sess = cluster.session()
        handles = sess.call(cluster.arm_client(0).alloc(count=1))
        ac = cluster.remote(0, handles[0])
        sess.call(ac.ping())
        assert len(tracer.by_category("net.delivered")) >= 4
