"""Tests for the node-attached (CUDA local) baseline."""

import numpy as np
import pytest

from repro.baselines import LocalAccelerator
from repro.cluster import Cluster, paper_testbed
from repro.errors import MiddlewareError
from repro.gpusim import PCIE_GEN2_X16
from repro.mpisim import Phantom
from repro.units import MiB


@pytest.fixture
def rig():
    cluster = Cluster(paper_testbed(n_compute=1, n_accelerators=0,
                                    local_gpus=True))
    node = cluster.compute_nodes[0]
    local = LocalAccelerator(cluster.engine, node.local_gpu, node.cpu)
    return cluster, cluster.session(), local


class TestLocalAccelerator:
    def test_roundtrip(self, rig):
        _, sess, local = rig
        data = np.arange(500, dtype=np.float64)
        ptr = sess.call(local.mem_alloc(data.nbytes))
        sess.call(local.memcpy_h2d(ptr, data))
        out = sess.call(local.memcpy_d2h(ptr, data.nbytes))
        np.testing.assert_array_equal(out, data)
        sess.call(local.mem_free(ptr))

    def test_pinned_faster_than_pageable(self, rig):
        _, sess, local = rig
        ptr = sess.call(local.mem_alloc(16 * MiB))
        t0 = sess.now
        sess.call(local.memcpy_h2d(ptr, Phantom(16 * MiB), pinned=True))
        t_pinned = sess.now - t0
        t0 = sess.now
        sess.call(local.memcpy_h2d(ptr, Phantom(16 * MiB), pinned=False))
        t_pageable = sess.now - t0
        assert t_pinned < t_pageable

    def test_timing_matches_pcie_model(self, rig):
        _, sess, local = rig
        ptr = sess.call(local.mem_alloc(32 * MiB))
        t0 = sess.now
        sess.call(local.memcpy_h2d(ptr, Phantom(32 * MiB)))
        assert sess.now - t0 == pytest.approx(
            PCIE_GEN2_X16.copy_time(32 * MiB, pinned=True))

    def test_kernel_flow(self, rig):
        _, sess, local = rig
        n = 128
        x = np.full(n, 4.0)
        ptr = sess.call(local.mem_alloc(x.nbytes))
        sess.call(local.memcpy_h2d(ptr, x))
        sess.call(local.kernel_create("dscal"))
        local.kernel_set_args("dscal", {"x": ptr, "n": n, "alpha": 0.5})
        sess.call(local.kernel_run("dscal"))
        out = sess.call(local.memcpy_d2h(ptr, x.nbytes))
        np.testing.assert_allclose(out, np.full(n, 2.0))

    def test_extension_kernels_available(self, rig):
        # kernel_create installs workload kernels (module upload).
        _, sess, local = rig
        sess.call(local.kernel_create("qr_larfb"))
        sess.call(local.kernel_create("srd_collide"))

    def test_unknown_kernel_rejected(self, rig):
        _, sess, local = rig
        with pytest.raises(MiddlewareError, match="unknown kernel"):
            sess.call(local.kernel_create("quantum_annealing"))

    def test_set_args_before_create_rejected(self, rig):
        _, _, local = rig
        with pytest.raises(MiddlewareError, match="not created"):
            local.kernel_set_args("dgemm", {})

    def test_overflow_rejected(self, rig):
        _, sess, local = rig
        ptr = sess.call(local.mem_alloc(8))
        with pytest.raises(MiddlewareError, match="exceeds"):
            sess.call(local.memcpy_h2d(ptr, np.zeros(10)))
        with pytest.raises(MiddlewareError, match="exceeds"):
            sess.call(local.memcpy_d2h(ptr, 100))

    def test_offset_roundtrip(self, rig):
        _, sess, local = rig
        ptr = sess.call(local.mem_alloc(100))
        sess.call(local.memcpy_h2d(ptr, b"\x07" * 10, offset=40))
        out = sess.call(local.memcpy_d2h(ptr, 10, offset=40))
        assert bytes(out) == b"\x07" * 10

    def test_phantom_roundtrip(self, rig):
        _, sess, local = rig
        ptr = sess.call(local.mem_alloc(MiB))
        sess.call(local.memcpy_h2d(ptr, Phantom(MiB)))
        out = sess.call(local.memcpy_d2h(ptr, MiB))
        assert isinstance(out, Phantom)
