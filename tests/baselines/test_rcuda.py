"""Tests for the rCUDA-style TCP remoting baseline."""

import numpy as np
import pytest

from repro.baselines import RCUDA_TRANSFER, mpi_cluster, rcuda_like_cluster
from repro.mpisim import Phantom
from repro.units import MiB


def alloc_one(cluster, transfer=None):
    sess = cluster.session()
    handles = sess.call(cluster.arm_client(0).alloc(count=1))
    return sess, cluster.remote(0, handles[0], transfer=transfer)


class TestRcudaBaseline:
    def test_tcp_cluster_uses_tcp_model(self):
        cluster = rcuda_like_cluster()
        assert cluster.fabric.model.name == "tcp-ipoib"
        assert mpi_cluster().fabric.model.name == "ib-qdr-mpi"

    def test_rcuda_transfer_has_no_gpudirect(self):
        assert RCUDA_TRANSFER.gpudirect is False

    def test_data_still_correct_over_tcp(self):
        # Slower, not wronger.
        sess, ac = alloc_one(rcuda_like_cluster(), transfer=RCUDA_TRANSFER)
        data = np.arange(1000, dtype=np.float64)
        ptr = sess.call(ac.mem_alloc(data.nbytes))
        sess.call(ac.memcpy_h2d(ptr, data))
        out = sess.call(ac.memcpy_d2h(ptr, data.nbytes))
        np.testing.assert_array_equal(out, data)

    def test_tcp_slower_than_mpi(self):
        results = {}
        for name, cluster, cfg in [
            ("mpi", mpi_cluster(), None),
            ("tcp", rcuda_like_cluster(), RCUDA_TRANSFER),
        ]:
            sess, ac = alloc_one(cluster, transfer=cfg)
            ptr = sess.call(ac.mem_alloc(8 * MiB))
            t0 = sess.now
            sess.call(ac.memcpy_h2d(ptr, Phantom(8 * MiB)))
            results[name] = sess.now - t0
        assert results["tcp"] > 2 * results["mpi"]

    def test_tcp_latency_hits_small_ops(self):
        sess_m, ac_m = alloc_one(mpi_cluster())
        sess_t, ac_t = alloc_one(rcuda_like_cluster(), transfer=RCUDA_TRANSFER)
        t0 = sess_m.now
        sess_m.call(ac_m.ping())
        t_mpi = sess_m.now - t0
        t0 = sess_t.now
        sess_t.call(ac_t.ping())
        t_tcp = sess_t.now - t0
        assert t_tcp > 5 * t_mpi
