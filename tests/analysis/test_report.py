"""Tests for the markdown report generator."""

import json

import pytest

from repro.analysis import FigureResult
from repro.analysis.report import (
    load_figure,
    load_results_dir,
    markdown_report,
    write_report,
)


@pytest.fixture
def results_dir(tmp_path):
    for fig_id, title in [("fig05", "H2D"), ("ext-tcp", "TCP"),
                          ("fig11", "MP2C")]:
        fig = FigureResult(fig_id, title, "x", "y", notes="a note")
        fig.add("s1", [1, 2], [10.0, 20.0])
        with open(tmp_path / f"{fig_id}.json", "w") as fh:
            json.dump(fig.to_dict(), fh)
    return tmp_path


class TestReport:
    def test_load_figure_roundtrip(self, results_dir):
        fig = load_figure(results_dir / "fig05.json")
        assert fig.fig_id == "fig05"
        assert fig.get("s1").at(2) == 20.0
        assert fig.notes == "a note"

    def test_load_dir_orders_paper_figures_first(self, results_dir):
        figs = load_results_dir(results_dir)
        assert [f.fig_id for f in figs] == ["fig05", "fig11", "ext-tcp"]

    def test_markdown_contains_tables(self, results_dir):
        text = markdown_report(load_results_dir(results_dir))
        assert "## fig05 — H2D" in text
        assert "```" in text
        assert "20.0" in text
        assert "*a note*" in text

    def test_write_report(self, results_dir, tmp_path):
        out = tmp_path / "report.md"
        n = write_report(results_dir, out)
        assert n == 3
        assert out.read_text().startswith("# Regenerated results")

    def test_empty_dir(self, tmp_path):
        out = tmp_path / "r.md"
        assert write_report(tmp_path, out) == 0
        assert "0 experiment(s)" in out.read_text()
