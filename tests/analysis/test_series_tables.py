"""Tests for the figure-series containers and table rendering."""

import pytest

from repro.analysis import FigureResult, Series, render_figure


class TestSeries:
    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="x values"):
            Series("s", [1, 2], [1.0])

    def test_at_and_peak(self):
        s = Series("s", [1, 2, 4], [10.0, 30.0, 20.0])
        assert s.at(2) == 30.0
        assert s.peak() == 30.0
        with pytest.raises(KeyError):
            s.at(3)

    def test_len(self):
        assert len(Series("s", [1], [2.0])) == 1


class TestFigureResult:
    def make(self):
        fig = FigureResult("figX", "Title", "N", "GF/s")
        fig.add("a", [1, 2], [1.0, 2.0])
        fig.add("b", [1, 2, 3], [3.0, 4.0, 5.0])
        return fig

    def test_get_and_labels(self):
        fig = self.make()
        assert fig.labels() == ["a", "b"]
        assert fig.get("b").at(3) == 5.0
        with pytest.raises(KeyError, match="no series"):
            fig.get("zzz")

    def test_to_dict_roundtrippable(self):
        import json
        fig = self.make()
        d = fig.to_dict()
        assert json.loads(json.dumps(d)) == d
        assert d["series"][0]["label"] == "a"

    def test_render_contains_all_points(self):
        fig = self.make()
        text = fig.render()
        assert "figX: Title" in text
        for token in ("a", "b", "1", "2", "3", "5.0"):
            assert token in text

    def test_render_missing_cells_dashed(self):
        fig = self.make()
        # Series "a" has no x=3 point.
        lines = render_figure(fig).splitlines()
        row3 = [l for l in lines if l.strip().startswith("3")][0]
        assert "-" in row3

    def test_notes_rendered(self):
        fig = FigureResult("f", "t", "x", "y", notes="hello note")
        fig.add("s", [1], [1.0])
        assert "hello note" in fig.render()
