"""Smoke tests: every experiment driver runs in quick mode and passes its
own shape check (the benchmarks run the full sweeps)."""

import pytest

from repro.analysis.experiments import (
    ext_blocksize,
    ext_faults,
    ext_gpudirect,
    ext_tcp,
    ext_utilization,
    fig05,
    fig06,
    fig09,
    fig10,
    fig11,
)


class TestFigureDriversQuick:
    def test_fig05_quick(self):
        fig = fig05.run(quick=True)
        # Quick mode skips intermediate sizes; the endpoint relations hold.
        assert fig.get("mpi-pingpong").at(65536.0) > 2500
        assert fig.get("dyn-naive").at(65536.0) < fig.get(
            "dyn-pipeline-128-512K").at(65536.0)

    def test_fig06_quick(self):
        fig = fig06.run(quick=True)
        assert fig.get("dyn-pipeline-128K").at(65536.0) > \
            fig.get("dyn-naive").at(65536.0)

    def test_fig09_quick_sizes(self):
        fig = fig09.run(quick=True)
        assert fig.get("cuda-local").x == [1024, 3072, 5184]
        local = fig.get("cuda-local")
        net1 = fig.get("1-network-gpu")
        for x in local.x:
            assert net1.at(x) <= local.at(x) * 1.005

    def test_fig10_quick(self):
        fig = fig10.run(quick=True)
        fig10.check(fig)

    def test_fig11_quick(self):
        fig = fig11.run(quick=True)
        local = fig.get("cuda-local")
        dyn = fig.get("dynamic-architecture")
        for x in local.x:
            assert 0 < dyn.at(x) / local.at(x) - 1 < 0.05


class TestExtensionDriversQuick:
    def test_ext_tcp_quick(self):
        fig = ext_tcp.run(quick=True)
        ext_tcp.check(fig)

    def test_ext_blocksize_quick(self):
        fig = ext_blocksize.run(quick=True)
        # Quick mode has 1 MiB and 64 MiB messages; optimum must grow.
        ext_blocksize.check(fig)

    def test_ext_utilization_quick(self):
        fig = ext_utilization.run(quick=True)
        ext_utilization.check(fig)

    def test_ext_utilization_seed_robust(self):
        for seed in (1, 7, 99):
            fig = ext_utilization.run(quick=True, seed=seed)
            static = fig.get("static")
            dynamic = fig.get("dynamic")
            assert dynamic.y[0] <= static.y[0] * 1.0001  # makespan

    def test_ext_faults_quick(self):
        fig = ext_faults.run(quick=True)
        ext_faults.check(fig)

    def test_ext_gpudirect_quick(self):
        fig = ext_gpudirect.run(quick=True)
        ext_gpudirect.check(fig)
