"""Tests for the metrics reporting and the CLI."""

import io
import json

import numpy as np
import pytest

from repro.analysis.cli import EXPERIMENTS, list_experiments, main, run_experiment
from repro.analysis.metrics import collect
from repro.cluster import Cluster, paper_testbed
from repro.mpisim import Phantom
from repro.units import MiB


class TestMetrics:
    @pytest.fixture
    def busy_cluster(self):
        cluster = Cluster(paper_testbed(n_compute=1, n_accelerators=2))
        sess = cluster.session()
        handles = sess.call(cluster.arm_client(0).alloc(count=1))
        ac = cluster.remote(0, handles[0])
        ptr = sess.call(ac.mem_alloc(4 * MiB))
        sess.call(ac.memcpy_h2d(ptr, Phantom(4 * MiB)))
        sess.call(ac.kernel_run("dgemm", {"A": 0, "B": 0, "C": 0,
                                          "m": 512, "n": 512, "k": 512},
                                real=False))
        out = sess.call(ac.memcpy_d2h(ptr, 2 * MiB))
        assert isinstance(out, Phantom)
        return cluster

    def test_collect_counts_traffic(self, busy_cluster):
        report = collect(busy_cluster)
        a0 = report.accelerators[0]
        assert a0.bytes_h2d == 4 * MiB
        assert a0.bytes_d2h == 2 * MiB
        assert a0.kernels_launched == 1
        assert a0.daemon_requests >= 4
        assert report.total_offload_bytes == 6 * MiB

    def test_idle_accelerator_untouched(self, busy_cluster):
        report = collect(busy_cluster)
        a1 = report.accelerators[1]
        assert a1.bytes_h2d == 0
        assert a1.kernels_launched == 0
        assert a1.state == "free"

    def test_fabric_accounting(self, busy_cluster):
        report = collect(busy_cluster)
        assert report.fabric_bytes > 6 * MiB  # payloads + control traffic
        assert report.fabric_messages > 10
        assert report.fabric_mean_bandwidth() > 0

    def test_utilizations_bounded(self, busy_cluster):
        report = collect(busy_cluster)
        assert 0 <= report.mean_gpu_utilization <= 1
        assert 0 <= report.pool_utilization <= 1
        for a in report.accelerators:
            assert 0 <= a.gpu_utilization(report.elapsed) <= 1

    def test_render_mentions_everything(self, busy_cluster):
        text = collect(busy_cluster).render()
        assert "fabric:" in text
        assert "ac0.gpu" in text or "ac0" in text
        assert "staging peak" in text


class TestCli:
    def test_registry_complete(self):
        assert set(EXPERIMENTS) == {
            "fig05", "fig06", "fig07", "fig08", "fig09", "fig10", "fig11",
            "ext_tcp", "ext_blocksize", "ext_utilization", "ext_contention",
            "ext_faults", "ext_gpudirect", "ext_lookahead", "ext_batch",
            "ext_async",
        }

    def test_list(self):
        out = io.StringIO()
        list_experiments(out)
        text = out.getvalue()
        for name in EXPERIMENTS:
            assert name in text

    def test_run_unknown_rejected(self):
        with pytest.raises(SystemExit, match="unknown experiment"):
            run_experiment("fig99")

    def test_run_quick_with_json(self, tmp_path):
        out = io.StringIO()
        path = tmp_path / "fig.json"
        run_experiment("ext_utilization", quick=True, check=True,
                       json_path=str(path), out=out)
        assert "shape check passed" in out.getvalue()
        data = json.loads(path.read_text())
        assert data["fig_id"] == "ext-utilization"

    def test_main_list(self, capsys):
        assert main(["list"]) == 0
        assert "fig05" in capsys.readouterr().out

    def test_main_run(self, capsys):
        assert main(["run", "ext_utilization", "--quick"]) == 0
        assert "shape check passed" in capsys.readouterr().out


class TestMicExtensibility:
    """The conclusion's claim: the stack is not CUDA/GPU-specific."""

    def test_middleware_drives_mic_pool_unchanged(self):
        import dataclasses
        from repro.cluster import AcceleratorNodeSpec, ClusterSpec
        from repro.gpusim import XEON_PHI_KNC

        spec = ClusterSpec(n_compute=1, n_accelerators=2,
                           accelerator=AcceleratorNodeSpec(gpu=XEON_PHI_KNC))
        cluster = Cluster(spec)
        sess = cluster.session()
        handles = sess.call(cluster.arm_client(0).alloc(count=1))
        ac = cluster.remote(0, handles[0])
        data = np.arange(256, dtype=np.float64)
        ptr = sess.call(ac.mem_alloc(data.nbytes))
        sess.call(ac.memcpy_h2d(ptr, data))
        sess.call(ac.kernel_run("dscal", {"x": ptr, "n": 256, "alpha": 2.0}))
        out = sess.call(ac.memcpy_d2h(ptr, data.nbytes))
        np.testing.assert_allclose(out, 2 * data)

    def test_mic_outcomputes_c1060(self):
        from repro.cluster import AcceleratorNodeSpec, ClusterSpec
        from repro.gpusim import XEON_PHI_KNC
        from repro.workloads.linalg import qr_factorize

        def gflops_with(gpu_spec):
            spec = ClusterSpec(n_compute=1, n_accelerators=1,
                               accelerator=AcceleratorNodeSpec(gpu=gpu_spec))
            cluster = Cluster(spec)
            sess = cluster.session()
            handles = sess.call(cluster.arm_client(0).alloc(count=1))
            acs = [cluster.remote(0, handles[0])]
            res = sess.call(qr_factorize(cluster.engine,
                                         cluster.compute_nodes[0].cpu,
                                         acs, n=2048, nb=128))
            return res.gflops

        from repro.gpusim import TESLA_C1060
        assert gflops_with(XEON_PHI_KNC) > gflops_with(TESLA_C1060) * 1.3
