"""Tests for the ``tenants`` CLI subcommand."""

import json

from repro.analysis.cli import main


class TestTenantsCommand:
    def test_quick_smoke_prints_report(self, capsys):
        assert main(["tenants", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "p99" in out
        assert "fairness" in out

    def test_check_determinism(self, capsys):
        assert main(["tenants", "--quick", "--check-determinism"]) == 0
        assert "determinism check passed" in capsys.readouterr().out

    def test_json_report(self, tmp_path, capsys):
        path = tmp_path / "tenants.json"
        assert main(["tenants", "--quick", "--json", str(path)]) == 0
        doc = json.loads(path.read_text())
        assert doc["submitted"] == doc["completed"] + doc["rejected"] + doc["aborted"]
        assert "latency_p99_s" in doc
        assert 0.0 < doc["fairness"] <= 1.0
        assert doc["per_tenant"]

    def test_custom_scale(self, capsys):
        assert main(["tenants", "--tenants", "30", "--accelerators", "2",
                     "--gateways", "2", "--slots", "2", "--window-ms", "1",
                     "--seed", "5"]) == 0
        assert "tenants 30" in capsys.readouterr().out
