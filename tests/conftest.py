"""Shared test configuration: multiprocess hygiene for sharded runs.

The sharded execution tests spawn real child processes.  Two rules keep
that surface deterministic and leak-free:

* the ``multiprocessing`` start method is pinned to ``spawn`` — children
  re-import modules fresh instead of inheriting a forked copy of the
  parent interpreter (matching what the sharded wire protocol assumes
  and what macOS/Windows do by default);
* a session-scoped fixture asserts clean teardown at the end of the
  run: no live child processes and no accumulated pipe file
  descriptors.
"""

import multiprocessing
import os

import pytest


def pytest_configure(config):
    multiprocessing.set_start_method("spawn", force=True)


def _pipe_fd_count():
    """Open pipe fds of this process (None where /proc is unavailable)."""
    fd_dir = "/proc/self/fd"
    if not os.path.isdir(fd_dir):
        return None
    count = 0
    for name in os.listdir(fd_dir):
        try:
            if os.readlink(os.path.join(fd_dir, name)).startswith("pipe:"):
                count += 1
        except OSError:
            continue
    return count


@pytest.fixture(scope="session", autouse=True)
def assert_clean_shard_teardown():
    """Every spawned shard worker must be gone when the session ends."""
    pipes_before = _pipe_fd_count()
    yield
    for proc in multiprocessing.active_children():
        proc.join(timeout=10.0)
    leaked = [p for p in multiprocessing.active_children() if p.is_alive()]
    for p in leaked:  # pragma: no cover - only on failure
        p.terminate()
        p.join(timeout=5.0)
    assert not leaked, (
        f"leaked child processes past session teardown: "
        f"{[p.name for p in leaked]}")
    pipes_after = _pipe_fd_count()
    if pipes_before is not None and pipes_after is not None:
        # Generous slack for interpreter-internal pipes (e.g. the
        # multiprocessing resource tracker); catches accumulation, not
        # incidental bookkeeping fds.
        assert pipes_after <= pipes_before + 8, (
            f"pipe fds accumulated over the session: "
            f"{pipes_before} -> {pipes_after}")
