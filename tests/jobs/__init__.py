"""Tests for the ensemble job service (repro.jobs)."""
