"""Job-service behaviour: DAG semantics, scheduling, and warm paths."""

import numpy as np
import pytest

from repro.cluster import Cluster, paper_testbed
from repro.errors import WorkloadError
from repro.jobs import JobService, JobSpec, JobState


@pytest.fixture
def cluster():
    return Cluster(paper_testbed(n_compute=2, n_accelerators=2))


def ping_body(log=None):
    def body(ctx):
        if log is not None:
            log.append(ctx.spec.name)
        value = yield from ctx.accelerators[0].ping()
        return value

    return body


def failing_body(ctx):
    yield from ctx.accelerators[0].ping()
    raise RuntimeError("body exploded")


def roundtrip_body(seed):
    payload = np.random.default_rng(seed).standard_normal(64)

    def body(ctx):
        ac = ctx.accelerators[0]
        addr = yield from ac.mem_alloc(payload.nbytes)
        yield from ac.memcpy_h2d(addr, payload)
        out = yield from ac.memcpy_d2h(addr, payload.nbytes)
        yield from ac.mem_free(addr)
        got = np.frombuffer(out, dtype=np.float64)
        assert np.array_equal(got, payload)
        return float(got.sum())

    return body


class TestSpecValidation:
    def test_self_dependency_rejected_at_construction(self):
        with pytest.raises(WorkloadError, match="cycle"):
            JobSpec(name="a", tenant="t", body=ping_body(), deps=("a",))

    @pytest.mark.parametrize("kwargs", [
        {"name": ""},
        {"tenant": ""},
        {"n_accelerators": 0},
        {"arrival_s": -1.0},
    ])
    def test_field_validation(self, kwargs):
        base = dict(name="a", tenant="t", body=ping_body())
        base.update(kwargs)
        with pytest.raises(WorkloadError):
            JobSpec(**base)


class TestDagEdgeCases:
    def test_cycle_rejected_at_submit(self, cluster):
        svc = JobService(cluster)
        specs = [
            JobSpec(name="a", tenant="t", body=ping_body(), deps=("c",)),
            JobSpec(name="b", tenant="t", body=ping_body(), deps=("a",)),
            JobSpec(name="c", tenant="t", body=ping_body(), deps=("b",)),
        ]
        with pytest.raises(WorkloadError, match="dependency cycle"):
            svc.submit_many(specs)
        # Nothing was submitted: the rejection happened before any state.
        assert svc.records == []

    def test_unknown_dependency_rejected(self, cluster):
        svc = JobService(cluster)
        with pytest.raises(WorkloadError, match="unknown job"):
            svc.submit_many([JobSpec(name="a", tenant="t",
                                     body=ping_body(), deps=("ghost",))])
        with pytest.raises(WorkloadError, match="unknown job"):
            svc.submit(JobSpec(name="b", tenant="t",
                               body=ping_body(), deps=("ghost",)))

    def test_duplicate_name_rejected(self, cluster):
        svc = JobService(cluster)
        spec = JobSpec(name="a", tenant="t", body=ping_body())
        with pytest.raises(WorkloadError, match="duplicate"):
            svc.submit_many([spec, JobSpec(name="a", tenant="t",
                                           body=ping_body())])

    def test_diamond_runs_each_job_exactly_once(self, cluster):
        svc = JobService(cluster)
        log = []
        specs = [
            JobSpec(name="a", tenant="t", body=ping_body(log)),
            JobSpec(name="b", tenant="t", body=ping_body(log), deps=("a",)),
            JobSpec(name="c", tenant="t", body=ping_body(log), deps=("a",)),
            JobSpec(name="d", tenant="t", body=ping_body(log),
                    deps=("b", "c")),
        ]
        records = svc.run_all(specs)
        assert [r.state for r in records] == [JobState.DONE] * 4
        assert sorted(log) == ["a", "b", "c", "d"]
        assert log[0] == "a" and log[-1] == "d"
        # The join job saw both parents finish before it started.
        d = svc.record("d")
        assert d.start_s >= svc.record("b").end_s
        assert d.start_s >= svc.record("c").end_s

    def test_failed_parent_cancels_descendants_distinctly(self, cluster):
        svc = JobService(cluster)
        log = []
        specs = [
            JobSpec(name="root", tenant="t", body=failing_body),
            JobSpec(name="child", tenant="t", body=ping_body(log),
                    deps=("root",)),
            JobSpec(name="grandchild", tenant="t", body=ping_body(log),
                    deps=("child",)),
            JobSpec(name="bystander", tenant="t", body=ping_body(log)),
        ]
        svc.run_all(specs)
        assert svc.record("root").state is JobState.FAILED
        assert isinstance(svc.record("root").error, RuntimeError)
        # Descendants are CANCELLED — a distinct terminal state — and
        # their bodies never ran.
        assert svc.record("child").state is JobState.CANCELLED
        assert svc.record("grandchild").state is JobState.CANCELLED
        assert "root" in str(svc.record("child").error)
        assert "child" in str(svc.record("grandchild").error)
        assert svc.record("bystander").state is JobState.DONE
        assert log == ["bystander"]
        assert (svc.jobs_done, svc.jobs_failed, svc.jobs_cancelled) \
            == (1, 1, 2)


class TestScheduling:
    def test_priority_orders_dispatch_under_contention(self, cluster):
        cluster.arm.admission.slots_per_device = 1
        svc = JobService(cluster, max_in_flight=1)
        log = []
        specs = [
            JobSpec(name=f"low{i}", tenant="t", body=ping_body(log),
                    priority=0)
            for i in range(3)
        ] + [JobSpec(name="high", tenant="t", body=ping_body(log),
                     priority=5)]
        records = svc.run_all(specs)
        assert all(r.state is JobState.DONE for r in records)
        # One slot: whichever job grabbed it first, the high-priority
        # job must run before the remaining low-priority backlog.
        assert log.index("high") <= 1

    def test_slots_released_after_run(self, cluster):
        free0 = cluster.arm.free_count()
        svc = JobService(cluster)
        svc.run_all([JobSpec(name="a", tenant="t", body=ping_body())])
        assert cluster.arm.free_count() == free0
        assert svc._free == svc.max_in_flight
        assert svc._arm_held == 0

    def test_multi_accelerator_job(self, cluster):
        svc = JobService(cluster)

        def body(ctx):
            assert len(ctx.accelerators) == 2
            a = yield from ctx.accelerators[0].ping()
            b = yield from ctx.accelerators[1].ping()
            return (a, b)

        rec = svc.run_all([JobSpec(name="wide", tenant="t", body=body,
                                   n_accelerators=2)])[0]
        assert rec.state is JobState.DONE and rec.result == ("pong", "pong")


class TestWarmPaths:
    def test_lease_reused_across_sequential_jobs(self, cluster):
        svc = JobService(cluster)
        specs = [JobSpec(name=f"j{i}", tenant="t", body=ping_body(),
                         deps=(f"j{i-1}",) if i else ())
                 for i in range(4)]
        svc.run_all(specs)
        assert svc.leases_cold == 1
        assert svc.lease_pool.reused == 3

    def test_unclaimed_lease_expires_after_ttl(self, cluster):
        svc = JobService(cluster, lease_ttl_s=1e-3)
        rec = svc.submit(JobSpec(name="a", tenant="t", body=ping_body()))
        cluster.engine.run(until=rec.done)
        assert len(svc.lease_pool) == 1
        assert svc._arm_held == 1  # the parked lease pins an ARM slot
        cluster.engine.run(until=cluster.engine.now + 2e-3)
        assert svc.lease_pool.expired == 1
        assert len(svc.lease_pool) == 0
        assert svc._arm_held == 0

    def test_cold_allocation_evicts_parked_lease_when_full(self, cluster):
        cluster.arm.admission.slots_per_device = 1
        svc = JobService(cluster)  # capacity = 2 devices x 1 slot
        a = [JobSpec(name=f"a{i}", tenant="alice", body=ping_body())
             for i in range(2)]  # independent: both slots get parked
        recs = svc.submit_many(a)  # no run_all: it would drain the pool
        cluster.engine.run(until=cluster.engine.all_of(
            [r.done for r in recs]))
        assert len(svc.lease_pool) == 2
        assert svc._arm_held == svc.max_in_flight
        # A different tenant needs a cold lease with the ARM full of
        # parked ones: the pool must make room, not block until TTL.
        rec = svc.submit(JobSpec(name="b", tenant="bob", body=ping_body()))
        cluster.engine.run(until=rec.done)
        assert rec.state is JobState.DONE
        assert svc.lease_pool.evicted >= 1

    def test_kernel_cache_skips_repeat_creates(self, cluster):
        svc = JobService(cluster)

        def body(ctx):
            ac = ctx.accelerators[0]
            yield from ac.kernel_create("dscal")
            addr = yield from ac.mem_alloc(64)
            yield from ac.kernel_run("dscal", {"x": addr, "n": 8,
                                               "alpha": 2.0})
            yield from ac.mem_free(addr)
            return None

        specs = [JobSpec(name=f"j{i}", tenant="t", body=body,
                         deps=(f"j{i-1}",) if i else ())
                 for i in range(3)]
        svc.run_all(specs)
        assert svc.kernel_cache.misses == 1
        assert svc.kernel_cache.hits == 2
        assert svc.kernel_cache.hit_rate == pytest.approx(2 / 3)

    def test_allocation_cache_reuses_same_size_buffers(self, cluster):
        svc = JobService(cluster)
        specs = [JobSpec(name=f"j{i}", tenant="t", body=roundtrip_body(i),
                         deps=(f"j{i-1}",) if i else ())
                 for i in range(3)]
        records = svc.run_all(specs)
        assert all(r.state is JobState.DONE for r in records)
        # Job 0 allocates cold; jobs 1..2 reuse the parked buffer.
        assert svc.lease_pool.alloc_misses == 1
        assert svc.lease_pool.alloc_hits == 2

    def test_caching_off_runs_everything_cold(self, cluster):
        svc = JobService(cluster, coalescing=False, caching=False)
        specs = [JobSpec(name=f"j{i}", tenant="t", body=roundtrip_body(i),
                         deps=(f"j{i-1}",) if i else ())
                 for i in range(3)]
        records = svc.run_all(specs)
        assert all(r.state is JobState.DONE for r in records)
        assert svc.kernel_cache is None and svc.lease_pool is None
        assert svc.leases_cold == 3

    def test_warm_paths_do_not_change_outcomes(self, cluster):
        results = {}
        for mode, (coal, cache) in {"on": (True, True),
                                    "off": (False, False)}.items():
            c = Cluster(paper_testbed(n_compute=2, n_accelerators=2))
            svc = JobService(c, coalescing=coal, caching=cache)
            specs = [JobSpec(name=f"j{i}", tenant="t",
                             body=roundtrip_body(i),
                             deps=(f"j{i-1}",) if i else ())
                     for i in range(4)]
            records = svc.run_all(specs)
            results[mode] = [(r.spec.name, r.state.value, r.result)
                             for r in records]
        assert results["on"] == results["off"]

    def test_dirty_lease_not_parked(self, cluster):
        svc = JobService(cluster)
        rec = svc.run_all([JobSpec(name="boom", tenant="t",
                                   body=failing_body)])[0]
        assert rec.state is JobState.FAILED
        assert svc.lease_pool.parked == 0
        assert svc._arm_held == 0
