"""Fixtures: a small traced cluster."""

import pytest

from repro.cluster import Cluster, paper_testbed
from repro.obs import enable_tracing


@pytest.fixture
def cluster():
    return Cluster(paper_testbed(n_compute=1, n_accelerators=2))


@pytest.fixture
def sess(cluster):
    return cluster.session()


@pytest.fixture
def collector(cluster):
    """The cluster engine's span collector, enabled."""
    return enable_tracing(cluster.engine)


@pytest.fixture
def ac(cluster, sess):
    """One allocated RemoteAccelerator front-end."""
    client = cluster.arm_client(0)
    handles = sess.call(client.alloc(count=1))
    return cluster.remote(0, handles[0])
