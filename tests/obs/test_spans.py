"""Span tracing: collection, request decomposition, and leak protection."""

import numpy as np
import pytest

from repro.core.api import run_parallel
from repro.errors import MiddlewareError, RequestTimeout
from repro.obs import NULL_SPAN, SpanContext, collector_for, enable_tracing
from repro.sim import Engine
from repro.units import KiB, MiB


class TestCollectorBasics:
    def test_disabled_collector_returns_null_span(self):
        engine = Engine()
        col = collector_for(engine)
        assert not col.enabled
        span = col.start("client.ping", "cn0")
        assert span is NULL_SPAN
        assert not col.spans

    def test_collector_is_per_engine_singleton(self):
        e1, e2 = Engine(), Engine()
        assert collector_for(e1) is collector_for(e1)
        assert collector_for(e1) is not collector_for(e2)

    def test_null_span_is_inert(self):
        NULL_SPAN.event("x", a=1)
        NULL_SPAN.set(b=2)
        assert NULL_SPAN.child("y") is NULL_SPAN
        NULL_SPAN.finish()
        assert NULL_SPAN.wire is None
        assert NULL_SPAN.context is None
        assert not NULL_SPAN
        with NULL_SPAN:
            pass
        assert NULL_SPAN.attrs == {}

    def test_span_timestamps_are_virtual(self):
        engine = Engine()
        col = enable_tracing(engine)

        def prog():
            with col.start("client.op", "cn0") as span:
                yield engine.timeout(1.5)
            return span

        proc = engine.process(prog())
        engine.run(until=proc)
        span = proc.value
        assert span.start == pytest.approx(0.0)
        assert span.end == pytest.approx(1.5)
        assert span.duration == pytest.approx(1.5)

    def test_child_shares_trace_id(self):
        engine = Engine()
        col = enable_tracing(engine)
        parent = col.start("client.op", "cn0")
        child = parent.child("dma.copy", "gpu0")
        assert child.trace_id == parent.trace_id
        assert child.parent_id == parent.span_id
        assert col.children_of(parent) == [child]

    def test_context_manager_records_error(self):
        engine = Engine()
        col = enable_tracing(engine)
        with pytest.raises(ValueError):
            with col.start("client.op", "cn0") as span:
                raise ValueError("boom")
        assert not span.open
        assert "ValueError" in span.attrs["error"]

    def test_adopt_parent_is_consumed_once(self):
        engine = Engine()
        col = enable_tracing(engine)
        root = col.start("stream.frame", "s0")
        col.adopt_parent(root.context)
        child = col.start("client.op", "cn0")
        assert child.parent_id == root.span_id
        orphan = col.start("client.op", "cn0")
        assert orphan.parent_id is None

    def test_abort_open_closes_and_marks(self):
        engine = Engine()
        col = enable_tracing(engine)
        span = col.start("client.op", "cn0")
        assert col.open_spans == [span]
        n = col.abort_open("test teardown")
        assert n == 1
        assert not span.open
        assert span.attrs["aborted"] == "test teardown"
        assert col.open_spans == []


class TestRequestDecomposition:
    def test_remote_memcpy_decomposes_on_one_trace(self, cluster, sess,
                                                   collector, ac):
        addr = sess.call(ac.mem_alloc(1 * MiB))
        sess.call(ac.memcpy_h2d(addr, np.ones(1 * MiB // 8)))
        roots = collector.by_name("client.memcpy_h2d")
        assert len(roots) == 1
        root = roots[0]
        family = collector.by_trace(root.trace_id)
        names = {s.name for s in family}
        # The one remote op decomposes into daemon handling, per-block
        # network receives, and DMA copies — all on one trace id.
        assert {"client.memcpy_h2d", "daemon.memcpy_h2d",
                "net.recv", "dma.copy"} <= names
        daemon_span = next(s for s in family if s.name == "daemon.memcpy_h2d")
        assert daemon_span.parent_id == root.span_id
        for s in family:
            assert not s.open
            assert root.start <= s.start
            assert s.end <= root.end + 1e-12

    def test_kernel_run_has_gpu_child_span(self, cluster, sess, collector, ac):
        n = 64
        p = sess.call(ac.mem_alloc(8 * n))
        sess.call(ac.memcpy_h2d(p, np.ones(n)))
        sess.call(ac.kernel_run("dscal", {"x": p, "n": n, "alpha": 2.0}))
        root = collector.by_name("client.kernel_run")[0]
        names = {s.name for s in collector.by_trace(root.trace_id)}
        assert "gpu.kernel" in names

    def test_retry_recorded_as_span_events(self, cluster, sess, collector):
        from repro.core import FaultInjector, RetryPolicy
        handles = sess.call(cluster.arm_client(0).alloc(count=1))
        ac = cluster.remote(0, handles[0],
                            retry=RetryPolicy(timeout_s=5e-3, max_attempts=3))
        # Crash the daemon so every attempt times out.
        FaultInjector(cluster).crash_at(handles[0].ac_id, at_time=sess.now)
        with pytest.raises(RequestTimeout):
            sess.call(ac.ping())
        span = collector.by_name("client.ping")[0]
        events = [e.name for e in span.events]
        assert events.count("timeout") == 3
        assert events.count("retry") == 2

    def test_trace_rides_request_without_wire_cost(self, cluster, sess, ac,
                                                   collector):
        from repro.core.protocol import Op, Request
        from repro.mpisim import payload_nbytes
        bare = Request(op=Op.PING, req_id=1, reply_to=0)
        traced = Request(op=Op.PING, req_id=1, reply_to=0, trace=(7, 9))
        assert payload_nbytes(bare) == payload_nbytes(traced)


class TestSpanLeakProtection:
    def _failing_branch(self, ac):
        yield from ac.mem_alloc(100 * 1024**3)  # OOM -> MiddlewareError

    def _slow_branch(self, ac, nbytes):
        addr = yield from ac.mem_alloc(nbytes)
        yield from ac.memcpy_h2d(addr, np.ones(nbytes // 8))

    def test_run_parallel_failure_leaves_no_open_spans(self, cluster, sess,
                                                       collector, ac):
        """Regression: a dead branch must not leak half-open spans."""
        def driver():
            yield from run_parallel(cluster.engine, [
                self._slow_branch(ac, 4 * MiB),
                self._failing_branch(ac),
            ])

        with pytest.raises(MiddlewareError):
            sess.call(driver())
        assert collector.open_spans == []
        aborted = [s for s in collector.spans if "aborted" in s.attrs]
        assert aborted, "interrupted branch spans should be marked aborted"

    def test_sync_parallel_failure_leaves_no_open_spans(self, cluster, sess,
                                                        collector, ac):
        with pytest.raises(MiddlewareError):
            sess.parallel([
                self._slow_branch(ac, 4 * MiB),
                self._failing_branch(ac),
            ])
        assert collector.open_spans == []

    def test_sync_call_timeout_leaves_no_open_spans(self, cluster, sess,
                                                    collector, ac):
        addr = sess.call(ac.mem_alloc(8 * MiB))
        with pytest.raises(RequestTimeout):
            sess.call(ac.memcpy_h2d(addr, np.ones(8 * MiB // 8)),
                      timeout_s=1e-6)
        assert collector.open_spans == []

    def test_run_parallel_success_unaffected(self, cluster, sess, collector,
                                             ac):
        def driver():
            results = yield from run_parallel(cluster.engine, [
                ac.mem_alloc(1 * KiB),
                ac.kernel_create("daxpy"),
            ])
            return results

        sess.call(driver())
        assert collector.open_spans == []
        assert not [s for s in collector.spans if "aborted" in s.attrs]


class TestFailoverSpans:
    def test_failover_recovery_span_and_events(self, cluster, sess, collector):
        from repro.core import FailoverConfig, FaultInjector
        handles = sess.call(cluster.arm_client(0).alloc(count=1, job="t"))
        rac = cluster.resilient(0, handles[0], config=FailoverConfig(job="t"))
        sess.call(rac.mem_alloc(1 * KiB))
        # Break the current accelerator; the next op triggers failover.
        FaultInjector(cluster).break_at(handles[0].ac_id, at_time=sess.now)
        sess.sleep(1e-4)
        sess.call(rac.ping())
        assert rac.failovers == 1
        spans = collector.by_name("failover.recover")
        assert len(spans) == 1
        span = spans[0]
        assert not span.open
        events = [e.name for e in span.events]
        assert "break_reported" in events
        assert "replacement_assigned" in events
        assert span.attrs["replayed_buffers"] == 1
