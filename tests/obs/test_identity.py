"""Tracing must never perturb the virtual timeline.

The same cluster program runs twice on fresh clusters — once with the
span collector enabled, once without — and every observable number
(final virtual time, per-op completion times, transfer output, component
counters) must be bit-identical.  This is the acceptance bar that lets
tracing stay on in CI without invalidating performance figures.
"""

import numpy as np

from repro.cluster import Cluster, paper_testbed
from repro.obs import collector_for, enable_tracing
from repro.units import MiB


def _program(traced: bool):
    """A transfer + kernel + failure-free batch workload; returns evidence."""
    cluster = Cluster(paper_testbed(n_compute=1, n_accelerators=2))
    if traced:
        enable_tracing(cluster.engine)
    sess = cluster.session()
    ac = cluster.remote(0, sess.call(cluster.arm_client(0).alloc(count=1))[0])
    marks = []
    data = np.arange(1 * MiB // 8, dtype=np.float64)

    addr = sess.call(ac.mem_alloc(data.nbytes))
    marks.append(sess.now)
    sess.call(ac.memcpy_h2d(addr, data))
    marks.append(sess.now)
    sess.call(ac.kernel_run("dscal", {"x": addr, "n": 4096, "alpha": 2.0}))
    marks.append(sess.now)
    out = sess.call(ac.memcpy_d2h(addr, data.nbytes))
    marks.append(sess.now)
    sess.call(ac.mem_free(addr))
    sess.call(ac.ping())
    marks.append(sess.now)

    stats = cluster.daemons[ac.handle.ac_id].stats
    evidence = {
        "marks": marks,
        "now": cluster.engine.now,
        "checksum": float(out.sum()),
        "requests": stats.requests,
        "bytes_h2d": stats.bytes_h2d,
        "bytes_d2h": stats.bytes_d2h,
        "fabric_bytes": cluster.fabric.bytes_moved,
        "fabric_messages": cluster.fabric.messages_sent,
    }
    spans = len(collector_for(cluster.engine).spans)
    return evidence, spans


def test_traced_run_is_bit_identical():
    untraced, n_untraced = _program(traced=False)
    traced, n_traced = _program(traced=True)
    assert n_untraced == 0
    assert n_traced > 10          # tracing actually recorded the run
    assert traced == untraced     # ...without moving a single number


def test_untraced_runs_are_deterministic():
    a, _ = _program(traced=False)
    b, _ = _program(traced=False)
    assert a == b
