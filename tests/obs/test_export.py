"""Chrome trace export: golden schema test, validation, ASCII timeline.

The golden file is produced by a hand-rolled deterministic trace (fresh
engine, fixed span program) rather than a cluster run: cluster traces
carry globally counted request ids whose values depend on test order.
Regenerate with::

    PYTHONPATH=src:tests python -c \
      "from obs.test_export import regenerate_golden; regenerate_golden()"
"""

import json
import pathlib

import numpy as np
import pytest

from repro.obs import enable_tracing
from repro.obs.export import (
    TraceSchemaError,
    chrome_trace,
    render_timeline,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.sim import Engine
from repro.units import MiB

GOLDEN = pathlib.Path(__file__).parent / "goldens" / "simple_trace.json"


def _reference_collector():
    """A tiny deterministic span program; ids and timestamps are fixed."""
    engine = Engine()
    col = enable_tracing(engine)

    def prog():
        with col.start("client.memcpy_h2d", "cn0", nbytes=4096) as root:
            root.event("inject", blocks=2)
            with root.child("daemon.memcpy_h2d", "ac0") as daemon:
                with daemon.child("net.recv", "ac0", block=0):
                    yield engine.timeout(1e-3)
                with daemon.child("dma.copy", "ac0.gpu.dma",
                                  nbytes=4096) as dma:
                    dma.event("engine_acquired")
                    yield engine.timeout(2e-3)

    engine.run(until=engine.process(prog()))
    return col


def regenerate_golden() -> None:  # pragma: no cover - maintenance helper
    GOLDEN.parent.mkdir(exist_ok=True)
    GOLDEN.write_text(json.dumps(chrome_trace(_reference_collector()),
                                 indent=1) + "\n")


class TestGolden:
    def test_export_matches_golden(self):
        trace = chrome_trace(_reference_collector())
        golden = json.loads(GOLDEN.read_text())
        assert trace == golden, (
            "Chrome trace export drifted from the golden file; if the "
            "change is intentional, regenerate (see module docstring)")

    def test_golden_passes_schema_validation(self):
        validate_chrome_trace(json.loads(GOLDEN.read_text()))

    def test_golden_is_json_round_trippable(self):
        trace = chrome_trace(_reference_collector())
        assert json.loads(json.dumps(trace)) == trace


class TestClusterTrace:
    def test_cluster_trace_validates(self, cluster, sess, collector, ac):
        addr = sess.call(ac.mem_alloc(1 * MiB))
        sess.call(ac.memcpy_h2d(addr, np.ones(1 * MiB // 8)))
        sess.call(ac.memcpy_d2h(addr, 1 * MiB))
        trace = chrome_trace(collector)
        validate_chrome_trace(trace)
        names = {ev["name"] for ev in trace["traceEvents"]}
        assert "client.memcpy_h2d" in names
        assert "dma.copy" in names
        assert trace["otherData"]["clock"] == "virtual"

    def test_write_chrome_trace(self, tmp_path, cluster, sess, collector, ac):
        sess.call(ac.ping())
        path = tmp_path / "trace.json"
        trace = write_chrome_trace(collector, str(path))
        assert json.loads(path.read_text()) == trace


class TestValidation:
    def test_rejects_non_dict(self):
        with pytest.raises(TraceSchemaError, match="must be a dict"):
            validate_chrome_trace([])

    def test_rejects_missing_events(self):
        with pytest.raises(TraceSchemaError, match="traceEvents"):
            validate_chrome_trace({"otherData": {}})

    def test_rejects_negative_duration(self):
        trace = chrome_trace(_reference_collector())
        span_event = next(e for e in trace["traceEvents"] if e["ph"] == "X")
        span_event["dur"] = -1.0
        with pytest.raises(TraceSchemaError, match="dur"):
            validate_chrome_trace(trace)

    def test_rejects_dangling_parent(self):
        trace = chrome_trace(_reference_collector())
        span_events = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        span_events[-1]["args"]["parent_id"] = 999
        with pytest.raises(TraceSchemaError, match="does not resolve"):
            validate_chrome_trace(trace)

    def test_rejects_cross_trace_parent(self):
        trace = chrome_trace(_reference_collector())
        span_events = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        span_events[-1]["args"]["trace_id"] = 42
        with pytest.raises(TraceSchemaError, match="different trace"):
            validate_chrome_trace(trace)

    def test_rejects_bad_phase(self):
        trace = chrome_trace(_reference_collector())
        trace["traceEvents"][0]["ph"] = "Z"
        with pytest.raises(TraceSchemaError, match="unknown phase"):
            validate_chrome_trace(trace)


class TestTimeline:
    def test_render_timeline_shows_spans(self):
        col = _reference_collector()
        text = render_timeline(col)
        assert "4 spans" in text
        assert "cn0 client.memcpy_h2d" in text
        assert "ac0.gpu.dma dma.copy" in text
        assert "=" in text

    def test_render_timeline_empty(self):
        engine = Engine()
        col = enable_tracing(engine)
        assert render_timeline(col) == "(no spans recorded)"
