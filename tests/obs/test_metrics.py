"""Metrics registry primitives and the registry-backed ClusterReport."""

import numpy as np
import pytest

from repro.analysis.metrics import collect
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    instrument_cluster,
    latency_summary,
)
from repro.units import MiB


class TestPrimitives:
    def test_counter_monotonic(self):
        c = Counter("requests")
        c.inc()
        c.inc(3)
        assert c.value == 4
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge_tracks_peak(self):
        g = Gauge("staging.bytes")
        g.set(10)
        g.set(50)
        g.set(5)
        assert g.value == 5
        assert g.peak == 50

    def test_histogram_exact_percentiles(self):
        h = Histogram("latency")
        for v in range(1, 101):       # 1..100
            h.observe(float(v))
        assert h.count == 100
        assert h.mean == pytest.approx(50.5)
        assert h.percentile(50) == 50.0
        assert h.percentile(95) == 95.0
        assert h.percentile(99) == 99.0
        assert h.percentile(0) == h.min == 1.0
        assert h.percentile(100) == h.max == 100.0
        with pytest.raises(ValueError):
            h.percentile(101)

    def test_histogram_empty(self):
        h = Histogram("latency")
        assert h.percentile(50) == 0.0
        assert h.summary() == {"count": 0, "mean": 0.0, "p50": 0.0,
                               "p95": 0.0, "p99": 0.0, "max": 0.0}

    def test_histogram_samples_kept_sorted(self):
        h = Histogram("latency")
        for v in (3.0, 1.0, 2.0):
            h.observe(v)
        assert h.min == 1.0 and h.max == 3.0
        assert h.percentile(50) == 2.0


class TestRegistry:
    def test_get_or_create_is_idempotent(self):
        reg = MetricsRegistry()
        assert reg.counter("x", ac="ac0") is reg.counter("x", ac="ac0")
        assert reg.counter("x", ac="ac0") is not reg.counter("x", ac="ac1")
        assert len(reg) == 2

    def test_same_name_different_kind_are_distinct(self):
        reg = MetricsRegistry()
        reg.counter("x").inc(2)
        reg.gauge("y").set(7)
        assert reg.value("x") == 2
        assert reg.value("y") == 7
        assert reg.value("absent") == 0.0

    def test_collect_renders_labels(self):
        reg = MetricsRegistry()
        reg.counter("reqs", ac="ac0").inc(5)
        reg.histogram("lat", op="ping").observe(1.0)
        flat = reg.collect()
        assert flat["reqs{ac=ac0}"] == 5
        assert flat["lat{op=ping}"]["count"] == 1
        assert "reqs{ac=ac0}: 5" in reg.render()

    def test_histograms_query(self):
        reg = MetricsRegistry()
        reg.histogram("request.latency_s", op="ping").observe(1.0)
        reg.histogram("request.latency_s", op="mem_alloc").observe(2.0)
        reg.histogram("other").observe(3.0)
        hists = reg.histograms("request.latency_s")
        assert len(hists) == 2
        summary = latency_summary(reg)
        assert set(summary) == {"ping", "mem_alloc"}


class TestInstrumentCluster:
    def test_component_counters_snapshot(self, cluster, sess, ac):
        addr = sess.call(ac.mem_alloc(1 * MiB))
        sess.call(ac.memcpy_h2d(addr, np.ones(1 * MiB // 8)))
        reg = instrument_cluster(cluster)
        ac_label = f"ac{ac.handle.ac_id}"
        assert reg.value("bytes.h2d", ac=ac_label) == 1 * MiB
        assert reg.value("dma.bytes", ac=ac_label) == 1 * MiB
        assert reg.value("daemon.requests", ac=ac_label) >= 2
        assert reg.value("fabric.bytes") > 1 * MiB  # payload + control
        assert 0.0 <= reg.value("pool.utilization") <= 1.0

    def test_latency_histograms_from_spans(self, cluster, sess, collector,
                                           ac):
        addr = sess.call(ac.mem_alloc(1 * MiB))
        sess.call(ac.memcpy_h2d(addr, np.ones(1 * MiB // 8)))
        sess.call(ac.ping())
        reg = instrument_cluster(cluster)
        summary = latency_summary(reg)
        assert {"mem_alloc", "memcpy_h2d", "ping", "all"} <= set(summary)
        assert summary["all"]["count"] == 3
        assert summary["memcpy_h2d"]["p50"] > summary["ping"]["p50"]
        dma = reg.histograms("dma.copy_s")
        assert dma and dma[0].count >= 1

    def test_no_latency_histograms_without_tracing(self, cluster, sess, ac):
        sess.call(ac.ping())
        reg = instrument_cluster(cluster)
        assert latency_summary(reg) == {}


class TestClusterReport:
    def test_report_reproduced_from_registry(self, cluster, sess, collector,
                                             ac):
        addr = sess.call(ac.mem_alloc(1 * MiB))
        sess.call(ac.memcpy_h2d(addr, np.ones(1 * MiB // 8)))
        out = sess.call(ac.memcpy_d2h(addr, 1 * MiB))
        assert len(out) == 1 * MiB // 8
        reg = instrument_cluster(cluster)
        report = collect(cluster, registry=reg)
        assert report.registry is reg
        a = next(m for m in report.accelerators
                 if m.ac_id == ac.handle.ac_id)
        # Every number in the report is readable straight off the registry.
        ac_label = f"ac{a.ac_id}"
        assert a.bytes_h2d == reg.value("bytes.h2d", ac=ac_label) == 1 * MiB
        assert a.bytes_d2h == reg.value("bytes.d2h", ac=ac_label) == 1 * MiB
        assert a.staging_peak == reg.gauge("staging.bytes", ac=ac_label).peak
        assert report.fabric_bytes == reg.value("fabric.bytes")
        assert report.total_offload_bytes == 2 * MiB

    def test_report_renders_latency_lines(self, cluster, sess, collector, ac):
        sess.call(ac.ping())
        report = collect(cluster)
        text = report.render()
        assert "latency ping:" in text
        assert "p95=" in text
        assert report.latency_percentiles()["ping"]["count"] == 1

    def test_report_without_tracing_has_no_percentiles(self, cluster, sess,
                                                       ac):
        sess.call(ac.ping())
        report = collect(cluster)
        assert report.latency_percentiles() == {}
        assert "latency" not in report.render()
