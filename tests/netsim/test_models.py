"""Unit tests for network link models."""

import pytest

from repro.errors import NetworkError
from repro.netsim import IB_QDR_MPI, TCP_IPOIB, LinkModel, preset
from repro.units import KiB, MiB, mib_per_s


class TestLinkModel:
    def test_wire_time_is_linear(self):
        m = IB_QDR_MPI
        assert m.wire_time(2 * MiB) == pytest.approx(2 * m.wire_time(MiB))

    def test_message_time_includes_overheads(self):
        m = IB_QDR_MPI
        assert m.message_time(0) == pytest.approx(m.latency_s + m.injection_overhead_s)

    def test_effective_bandwidth_ramps_with_size(self):
        m = IB_QDR_MPI
        bws = [m.effective_bandwidth(n) for n in (KiB, 64 * KiB, MiB, 64 * MiB)]
        assert bws == sorted(bws)

    def test_peak_bandwidth_approached_at_64mib(self):
        # The paper reports ~2660 MiB/s for a 64 MiB PingPong message.
        bw = mib_per_s(IB_QDR_MPI.effective_bandwidth(64 * MiB))
        assert 2600 < bw <= 2660

    def test_small_message_dominated_by_latency(self):
        m = IB_QDR_MPI
        t = m.message_time(1)
        assert t == pytest.approx(m.latency_s + m.injection_overhead_s, rel=0.1)

    def test_tcp_slower_than_ib_everywhere(self):
        for n in (KiB, 64 * KiB, MiB, 16 * MiB):
            assert TCP_IPOIB.effective_bandwidth(n) < IB_QDR_MPI.effective_bandwidth(n)

    def test_negative_size_rejected(self):
        with pytest.raises(NetworkError):
            IB_QDR_MPI.wire_time(-1)
        with pytest.raises(NetworkError):
            IB_QDR_MPI.effective_bandwidth(0)

    def test_validation_on_construction(self):
        with pytest.raises(NetworkError):
            LinkModel("bad", -1.0, 1.0, 0.0, 0)
        with pytest.raises(NetworkError):
            LinkModel("bad", 0.0, 0.0, 0.0, 0)
        with pytest.raises(NetworkError):
            LinkModel("bad", 0.0, 1.0, -1.0, 0)
        with pytest.raises(NetworkError):
            LinkModel("bad", 0.0, 1.0, 0.0, -5)

    def test_preset_lookup(self):
        assert preset("ib-qdr-mpi") is IB_QDR_MPI
        with pytest.raises(NetworkError, match="unknown link model"):
            preset("carrier-pigeon")
