"""Multi-switch topologies: routing, per-hop contention, routed chaos."""

import pytest

from repro.errors import NetworkError
from repro.netsim import Fabric, LinkModel, Topology, TopologySpec
from repro.sim import Engine

# Round numbers so expected times are computable by hand (see
# tests/netsim/test_fabric.py): 1000 B takes 1 s of wire time.
SIMPLE = LinkModel(
    name="simple",
    latency_s=0.001,
    bandwidth_Bps=1000.0,
    injection_overhead_s=0.0005,
    rendezvous_threshold=0,
)


@pytest.fixture
def eng():
    return Engine()


def two_switch(eng, **kw):
    """a, b on sw0; c, d on sw1; one trunk between them."""
    topo = Topology.ring(2, **kw)
    fabric = Fabric(eng, SIMPLE, topology=topo)
    for name, sw in (("a", "sw0"), ("b", "sw0"), ("c", "sw1"), ("d", "sw1")):
        fabric.add_endpoint(name, switch=sw)
    return fabric


class TestTopologyRouting:
    def test_ring_routes_take_the_short_way_around(self):
        topo = Topology.ring(6)
        assert topo.route("sw0", "sw2") == ("sw0", "sw1", "sw2")
        # 0 -> 5 wraps backwards: one hop, not five.
        assert topo.route("sw0", "sw5") == ("sw0", "sw5")
        assert topo.hops("sw0", "sw3") == 3

    def test_torus_wraparound_shortcut(self):
        topo = Topology.torus(4, 4)
        # Corner to corner is two wraparound hops, not six mesh hops.
        assert topo.route("sw0-0", "sw3-3") == ("sw0-0", "sw0-3", "sw3-3")
        assert topo.hops("sw0-0", "sw3-3") == 2

    def test_torus3d_shape(self):
        topo = Topology.torus(2, 2, 2)
        assert len(topo.switches) == 8
        assert len(topo.trunks) == 12
        assert max(topo.hops("sw0-0-0", s) for s in topo.switches) == 3

    def test_equal_length_tie_breaks_deterministically(self):
        topo = Topology.torus(2, 2)
        # Two 2-hop paths exist (via sw0-1 or sw1-0); sorted-adjacency
        # BFS always discovers sw1-1 through the lexicographically
        # earlier intermediate.
        assert topo.route("sw0-0", "sw1-1") == ("sw0-0", "sw0-1", "sw1-1")

    def test_routing_identical_across_rebuilds(self):
        a, b = Topology.torus(3, 3), Topology.torus(3, 3)
        for src in a.switches:
            for dst in a.switches:
                assert a.route(src, dst) == b.route(src, dst)

    def test_same_switch_route_is_trivial(self):
        topo = Topology.ring(3)
        assert topo.route("sw1", "sw1") == ("sw1",)
        assert topo.trunk_hops("sw1", "sw1") == ()

    def test_disconnected_switches_rejected(self):
        topo = Topology("split", ["sw0", "sw1"], [])
        with pytest.raises(NetworkError):
            topo.route("sw0", "sw1")

    def test_spec_validation(self):
        with pytest.raises(NetworkError):
            TopologySpec(kind="hypercube")
        with pytest.raises(NetworkError):
            TopologySpec(kind="ring", dims=(2, 2))
        with pytest.raises(NetworkError):
            TopologySpec(kind="torus2d", dims=(2,))
        with pytest.raises(NetworkError):
            TopologySpec(kind="ring", dims=(1,)).build()
        assert TopologySpec(kind="torus2d", dims=(2, 2)).build().name == \
            "torus2x2"

    def test_endpoint_switch_validation(self, eng):
        fabric = two_switch(eng)
        with pytest.raises(NetworkError):
            fabric.add_endpoint("x", switch="sw99")
        single = Fabric(eng, SIMPLE)
        with pytest.raises(NetworkError):
            single.add_endpoint("x", switch="sw0")

    def test_hop_count_between_endpoints(self, eng):
        fabric = two_switch(eng)
        assert fabric.hop_count("a", "b") == 0
        assert fabric.hop_count("a", "c") == 1
        assert fabric.switch_of("a") == "sw0"
        assert fabric.switch_of("c") == "sw1"


class TestTrunkTiming:
    def test_cross_switch_adds_per_hop_latency(self, eng):
        fabric = two_switch(eng)
        tx = fabric.transfer("a", "c", 1000)
        eng.run(until=tx.delivered)
        # injection 0.0005 + wire 1.0 + endpoint latency 0.001
        # + 1 trunk hop x 0.001.
        assert eng.now == pytest.approx(1.0025)

    def test_same_switch_pays_no_trunk_latency(self, eng):
        fabric = two_switch(eng)
        tx = fabric.transfer("a", "b", 1000)
        eng.run(until=tx.delivered)
        assert eng.now == pytest.approx(1.0015)

    def test_trunk_latency_override(self, eng):
        fabric = two_switch(eng, trunk_latency_s=0.01)
        tx = fabric.transfer("a", "c", 1000)
        eng.run(until=tx.delivered)
        assert eng.now == pytest.approx(1.0115)

    def test_two_flows_share_one_trunk(self, eng):
        """Flows to different destinations contend on the shared trunk:
        each gets half the trunk, so the wire phase takes twice as long —
        aggregate trunk throughput never exceeds trunk capacity."""
        fabric = two_switch(eng)
        t1 = fabric.transfer("a", "c", 1000)
        t2 = fabric.transfer("b", "d", 1000)
        eng.run(until=eng.all_of([t1.delivered, t2.delivered]))
        # Both flows finish together: 0.0005 + 2000/1000 + 0.001 + 0.001.
        assert eng.now == pytest.approx(2.0025)
        # Conservation: 2000 B crossed a 1000 B/s trunk in ~2 s of wire
        # time — the shared segment never ran above capacity.
        wire_s = eng.now - 0.0025
        assert 2000 / wire_s <= 1000 * 1.001

    def test_opposite_directions_do_not_contend(self, eng):
        """The trunk is full duplex: sw0->sw1 and sw1->sw0 are separate
        shares, so counter-flowing transfers run at full speed."""
        fabric = two_switch(eng)
        t1 = fabric.transfer("a", "c", 1000)
        t2 = fabric.transfer("c", "a", 1000)
        eng.run(until=eng.all_of([t1.delivered, t2.delivered]))
        assert eng.now == pytest.approx(1.0025)

    def test_trunk_bytes_accounting(self, eng):
        fabric = two_switch(eng)
        t1 = fabric.transfer("a", "c", 700)
        t2 = fabric.transfer("a", "b", 300)  # same switch: no trunk bytes
        eng.run()
        assert fabric.trunk_bytes == {("sw0", "sw1"): 700}
        # End-to-end totals count each message once, not per hop.
        assert fabric.bytes_moved == 1000
        assert fabric.endpoints["a"].tx_bytes == 1000
        assert fabric.endpoints["c"].rx_bytes == 700
        assert not t1.dropped and not t2.dropped


class TestRoutedChaos:
    def test_cut_severs_the_shared_trunk(self, eng):
        """Cutting a cross-switch pair cuts the trunk segments on its
        route, so *other* pairs routed over the same trunk drop too —
        a partition, not a port filter."""
        fabric = two_switch(eng)
        fabric.cut("a", "c")
        assert fabric.is_cut("a", "c")
        assert fabric.is_cut("b", "d")  # same trunk, also severed
        assert not fabric.is_cut("a", "b")  # same-switch traffic survives
        tx = fabric.transfer("b", "d", 10)
        assert tx.dropped
        fabric.heal("a", "c")
        assert not fabric.is_cut("b", "d")
        tx2 = fabric.transfer("b", "d", 10)
        eng.run(until=tx2.delivered)
        assert not tx2.dropped

    def test_same_switch_cut_stays_port_level(self, eng):
        fabric = two_switch(eng)
        fabric.cut("a", "b")
        assert fabric.is_cut("a", "b")
        assert not fabric.is_cut("a", "c")  # trunk untouched
        fabric.heal(None)
        assert not fabric.is_cut("a", "b")

    def test_overlapping_cuts_heal_by_refcount(self, eng):
        fabric = two_switch(eng)
        fabric.cut("a", "c")
        fabric.cut("b", "d")  # same trunk, second reference
        fabric.heal("a", "c")
        # The trunk stays down until the last cut over it is healed.
        assert fabric.is_cut("b", "d")
        fabric.heal("b", "d")
        assert not fabric.is_cut("b", "d")

    def test_slow_link_slows_the_trunk(self, eng):
        """set_link_delay on a cross-switch pair degrades the trunk on
        its route: other pairs crossing that trunk slow down with it."""
        fabric = two_switch(eng)
        fabric.set_link_delay("a", "c", 0.5)
        tx = fabric.transfer("b", "d", 1000)
        eng.run(until=tx.delivered)
        assert eng.now == pytest.approx(1.0025 + 0.5)
        fabric.set_link_delay("a", "c", 0.0)
        t0 = eng.now
        tx2 = fabric.transfer("b", "d", 1000)
        eng.run(until=tx2.delivered)
        assert eng.now - t0 == pytest.approx(1.0025)
