"""Tests for the oversubscribed switch-core model."""

import pytest

from repro.cluster import ClusterSpec
from repro.errors import ClusterConfigError
from repro.netsim import Fabric, LinkModel
from repro.sim import Engine

MODEL = LinkModel("core", latency_s=0.0, bandwidth_Bps=1000.0,
                  injection_overhead_s=0.0, rendezvous_threshold=0)


def build(core=None, n=4):
    eng = Engine()
    f = Fabric(eng, MODEL)
    for i in range(n):
        f.add_endpoint(f"n{i}")
    f.set_core_capacity(core)
    return eng, f


class TestCoreCapacity:
    def test_crossbar_disjoint_flows_full_rate(self):
        eng, f = build(core=None)
        t1 = f.transfer("n0", "n1", 1000)
        t2 = f.transfer("n2", "n3", 1000)
        eng.run()
        assert eng.now == pytest.approx(1.0, rel=0.01)
        assert t1.delivered.processed and t2.delivered.processed

    def test_core_limits_disjoint_flows(self):
        eng, f = build(core=1000.0)  # both flows share one core unit
        t1 = f.transfer("n0", "n1", 1000)
        t2 = f.transfer("n2", "n3", 1000)
        eng.run()
        assert eng.now == pytest.approx(2.0, rel=0.01)

    def test_large_core_behaves_like_crossbar(self):
        eng, f = build(core=1e9)
        f.transfer("n0", "n1", 1000)
        f.transfer("n2", "n3", 1000)
        eng.run()
        assert eng.now == pytest.approx(1.0, rel=0.01)

    def test_single_flow_unaffected_by_core(self):
        eng, f = build(core=1000.0)
        tx = f.transfer("n0", "n1", 500)
        eng.run(until=tx.delivered)
        assert eng.now == pytest.approx(0.5, rel=0.01)

    def test_loopback_bypasses_core(self):
        eng, f = build(core=1.0)  # pathological core
        tx = f.transfer("n0", "n0", 1000)
        eng.run(until=tx.delivered)
        assert eng.now == pytest.approx(1.0, rel=0.01)

    def test_core_can_be_reset(self):
        eng, f = build(core=1000.0)
        f.set_core_capacity(None)
        f.transfer("n0", "n1", 1000)
        f.transfer("n2", "n3", 1000)
        eng.run()
        assert eng.now == pytest.approx(1.0, rel=0.01)


class TestClusterSpecCore:
    def test_default_crossbar(self):
        spec = ClusterSpec(n_compute=2, n_accelerators=2)
        assert spec.core_capacity_Bps() is None

    def test_oversubscribed_capacity(self):
        spec = ClusterSpec(n_compute=3, n_accelerators=2,
                           switch_oversubscription=2.0)
        ports = 3 + 2 + 1
        expected = ports * spec.network.bandwidth_Bps / 4.0
        assert spec.core_capacity_Bps() == pytest.approx(expected)

    def test_factor_below_one_rejected(self):
        with pytest.raises(ClusterConfigError, match="oversubscription"):
            ClusterSpec(n_compute=1, n_accelerators=0,
                        switch_oversubscription=0.5)
