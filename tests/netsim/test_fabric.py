"""Unit tests for the switched fabric."""

import pytest

from repro.errors import NetworkError
from repro.netsim import Fabric, IB_QDR_MPI, LinkModel
from repro.sim import Engine
from repro.units import MiB

# A round-number model so expected times are easy to compute by hand.
SIMPLE = LinkModel(
    name="simple",
    latency_s=0.001,
    bandwidth_Bps=1000.0,
    injection_overhead_s=0.0005,
    rendezvous_threshold=0,
)


@pytest.fixture
def eng():
    return Engine()


@pytest.fixture
def fabric(eng):
    f = Fabric(eng, SIMPLE)
    f.add_endpoint("a")
    f.add_endpoint("b")
    f.add_endpoint("c")
    return f


class TestFabricBasics:
    def test_uncontended_transfer_time(self, eng, fabric):
        tx = fabric.transfer("a", "b", 1000)
        eng.run(until=tx.delivered)
        # injection 0.0005 + wire 1.0 + latency 0.001
        assert eng.now == pytest.approx(1.0015)

    def test_injected_fires_before_delivered(self, eng, fabric):
        tx = fabric.transfer("a", "b", 1000)
        eng.run(until=tx.injected)
        t_inj = eng.now
        eng.run(until=tx.delivered)
        assert t_inj == pytest.approx(0.0005)
        assert eng.now > t_inj

    def test_zero_byte_message_costs_overheads_only(self, eng, fabric):
        tx = fabric.transfer("a", "b", 0)
        eng.run(until=tx.delivered)
        assert eng.now == pytest.approx(0.0015)

    def test_loopback_has_no_latency(self, eng, fabric):
        tx = fabric.transfer("a", "a", 1000)
        eng.run(until=tx.delivered)
        assert eng.now == pytest.approx(0.0005 + 1.0)

    def test_duplicate_endpoint_rejected(self, eng, fabric):
        with pytest.raises(NetworkError):
            fabric.add_endpoint("a")

    def test_unknown_endpoint_rejected(self, fabric):
        with pytest.raises(NetworkError):
            fabric.transfer("a", "zzz", 10)

    def test_negative_size_rejected(self, fabric):
        with pytest.raises(NetworkError):
            fabric.transfer("a", "b", -1)

    def test_foreign_endpoint_rejected(self, eng, fabric):
        other = Fabric(eng, SIMPLE)
        ep = other.add_endpoint("x")
        with pytest.raises(NetworkError):
            fabric.transfer(fabric.endpoint("a"), ep, 10)

    def test_accounting(self, eng, fabric):
        t1 = fabric.transfer("a", "b", 500)
        t2 = fabric.transfer("b", "c", 300)
        eng.run()
        assert fabric.bytes_moved == 800
        assert fabric.messages_sent == 2
        assert t1.delivered.processed and t2.delivered.processed


class TestFabricContention:
    def test_two_senders_one_receiver_share_rx(self, eng, fabric):
        # Both flows of 1000 B converge on c's RX share (1000 B/s):
        # each runs at ~500 B/s -> ~2s wire time.
        t1 = fabric.transfer("a", "c", 1000)
        t2 = fabric.transfer("b", "c", 1000)
        eng.run()
        done1 = t1.delivered
        done2 = t2.delivered
        assert done1.processed and done2.processed
        assert eng.now == pytest.approx(2.0 + 0.0005 + 0.001, rel=0.01)

    def test_one_sender_two_receivers_serialize_at_nic(self, eng, fabric):
        t1 = fabric.transfer("a", "b", 1000)
        t2 = fabric.transfer("a", "c", 1000)
        eng.run(until=t1.delivered)
        # First message drains at full rate.
        assert eng.now == pytest.approx(1.0015, rel=0.01)
        eng.run()
        assert t2.delivered.processed
        # Second queued behind the first at a's NIC.
        assert eng.now == pytest.approx(2.0 + 2 * 0.0005 + 0.001, rel=0.01)

    def test_disjoint_pairs_do_not_interfere(self, eng):
        f = Fabric(eng, SIMPLE)
        for n in "abcd":
            f.add_endpoint(n)
        t1 = f.transfer("a", "b", 1000)
        t2 = f.transfer("c", "d", 1000)
        eng.run()
        assert t1.delivered.processed and t2.delivered.processed
        # Full crossbar: both complete in single-flow time.
        assert eng.now == pytest.approx(1.0015, rel=0.01)

    def test_duplex_directions_independent(self, eng, fabric):
        t1 = fabric.transfer("a", "b", 1000)
        t2 = fabric.transfer("b", "a", 1000)
        eng.run()
        assert t1.delivered.processed and t2.delivered.processed
        assert eng.now == pytest.approx(1.0015, rel=0.01)

    def test_incast_scales_with_sender_count(self, eng):
        # k senders converging on one receiver drain in ~k x single time:
        # the receiver's RX share is the bottleneck, not the senders.
        f = Fabric(eng, SIMPLE)
        for n in "abcdz":
            f.add_endpoint(n)
        txs = [f.transfer(src, "z", 1000) for src in "abcd"]
        eng.run()
        assert all(t.delivered.processed for t in txs)
        assert eng.now == pytest.approx(4.0 + 0.0005 + 0.001, rel=0.01)

    def test_nic_injection_serialized(self, eng, fabric):
        # 100 zero-byte messages from the same NIC: injections serialize.
        txs = [fabric.transfer("a", "b", 0) for _ in range(100)]
        eng.run()
        assert all(t.delivered.processed for t in txs)
        assert eng.now == pytest.approx(100 * 0.0005 + 0.001, rel=0.01)


class TestFabricRealistic:
    def test_ib_qdr_64mib_matches_model(self, eng):
        f = Fabric(eng, IB_QDR_MPI)
        f.add_endpoint("cn0")
        f.add_endpoint("ac0")
        tx = f.transfer("cn0", "ac0", 64 * MiB)
        eng.run(until=tx.delivered)
        assert eng.now == pytest.approx(IB_QDR_MPI.message_time(64 * MiB), rel=1e-6)
