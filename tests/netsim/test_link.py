"""Tests for the standalone point-to-point Link."""

import pytest

from repro.errors import NetworkError
from repro.netsim import Link, LinkModel
from repro.sim import Engine

MODEL = LinkModel("plink", latency_s=0.001, bandwidth_Bps=1000.0,
                  injection_overhead_s=0.0005, rendezvous_threshold=0)


@pytest.fixture
def eng():
    return Engine()


@pytest.fixture
def link(eng):
    return Link(eng, MODEL)


class TestLink:
    def test_transfer_time(self, eng, link):
        done = link.transfer("ab", 1000)
        eng.run(until=done)
        assert eng.now == pytest.approx(0.0005 + 1.0 + 0.001)

    def test_directions_independent(self, eng, link):
        d1 = link.transfer("ab", 1000)
        d2 = link.transfer("ba", 1000)
        eng.run(until=eng.all_of([d1, d2]))
        assert eng.now == pytest.approx(1.0015, rel=0.01)

    def test_same_direction_shares(self, eng, link):
        d1 = link.transfer("ab", 1000)
        d2 = link.transfer("ab", 1000)
        eng.run(until=eng.all_of([d1, d2]))
        assert eng.now == pytest.approx(2.0015, rel=0.01)

    def test_zero_bytes(self, eng, link):
        done = link.transfer("ab", 0)
        eng.run(until=done)
        assert eng.now == pytest.approx(0.0015)

    def test_bad_direction(self, link):
        with pytest.raises(NetworkError, match="direction"):
            link.transfer("sideways", 10)

    def test_negative_size(self, link):
        with pytest.raises(NetworkError):
            link.transfer("ab", -5)


class TestLinkContention:
    """Fair-share semantics of a congested link direction."""

    def test_n_way_sharing_scales_linearly(self, eng, link):
        done = [link.transfer("ab", 1000) for _ in range(4)]
        eng.run(until=eng.all_of(done))
        # 4000 B through a 1000 B/s pipe; overheads paid concurrently.
        assert eng.now == pytest.approx(4.0 + 0.0005 + 0.001, rel=0.01)

    def test_short_flow_shares_instead_of_queueing(self, eng, link):
        long = link.transfer("ab", 3000)
        short = link.transfer("ab", 300)
        eng.run(until=short)
        # At 500 B/s each, the short flow's 300 B drain in 0.6 s — far
        # sooner than if it had to wait behind the 3000 B transfer.
        assert eng.now == pytest.approx(0.0005 + 0.6 + 0.001, rel=0.01)
        eng.run(until=long)
        # Bandwidth is conserved: the long flow still finishes when all
        # 3300 B have crossed the wire, no earlier.
        assert eng.now == pytest.approx(0.0005 + 3.3 + 0.001, rel=0.01)

    def test_late_joiner_slows_in_flight_transfer(self, eng, link):
        first = link.transfer("ab", 2000)
        second_done = []

        def late():
            yield eng.timeout(1.0)
            second_done.append(link.transfer("ab", 1000))

        eng.process(late())
        eng.run(until=first)
        # First half drains at 1000 B/s; once the second flow joins, the
        # remaining 1000 B proceed at 500 B/s -> ~2 more seconds.
        assert eng.now == pytest.approx(0.0005 + 1.0 + 2.0 + 0.001, rel=0.01)
        eng.run(until=second_done[0])
        assert eng.now == pytest.approx(1.0 + 0.0005 + 2.0 + 0.001, rel=0.01)

    def test_reverse_direction_unaffected_by_congestion(self, eng, link):
        for _ in range(4):
            link.transfer("ab", 1000)
        rev = link.transfer("ba", 1000)
        eng.run(until=rev)
        # Full duplex: heavy forward traffic costs the reverse flow nothing.
        assert eng.now == pytest.approx(1.0015, rel=0.01)
