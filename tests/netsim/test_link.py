"""Tests for the standalone point-to-point Link."""

import pytest

from repro.errors import NetworkError
from repro.netsim import Link, LinkModel
from repro.sim import Engine

MODEL = LinkModel("plink", latency_s=0.001, bandwidth_Bps=1000.0,
                  injection_overhead_s=0.0005, rendezvous_threshold=0)


@pytest.fixture
def eng():
    return Engine()


@pytest.fixture
def link(eng):
    return Link(eng, MODEL)


class TestLink:
    def test_transfer_time(self, eng, link):
        done = link.transfer("ab", 1000)
        eng.run(until=done)
        assert eng.now == pytest.approx(0.0005 + 1.0 + 0.001)

    def test_directions_independent(self, eng, link):
        d1 = link.transfer("ab", 1000)
        d2 = link.transfer("ba", 1000)
        eng.run(until=eng.all_of([d1, d2]))
        assert eng.now == pytest.approx(1.0015, rel=0.01)

    def test_same_direction_shares(self, eng, link):
        d1 = link.transfer("ab", 1000)
        d2 = link.transfer("ab", 1000)
        eng.run(until=eng.all_of([d1, d2]))
        assert eng.now == pytest.approx(2.0015, rel=0.01)

    def test_zero_bytes(self, eng, link):
        done = link.transfer("ab", 0)
        eng.run(until=done)
        assert eng.now == pytest.approx(0.0015)

    def test_bad_direction(self, link):
        with pytest.raises(NetworkError, match="direction"):
            link.transfer("sideways", 10)

    def test_negative_size(self, link):
        with pytest.raises(NetworkError):
            link.transfer("ab", -5)
