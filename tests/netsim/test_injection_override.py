"""Tests for per-message injection-cost overrides on the fabric."""

import pytest

from repro.errors import NetworkError
from repro.netsim import Fabric, LinkModel
from repro.sim import Engine

MODEL = LinkModel("ovr", latency_s=0.0, bandwidth_Bps=1000.0,
                  injection_overhead_s=0.01, rendezvous_threshold=0)


@pytest.fixture
def rig():
    eng = Engine()
    f = Fabric(eng, MODEL)
    f.add_endpoint("a")
    f.add_endpoint("b")
    return eng, f


class TestInjectionOverride:
    def test_default_uses_model(self, rig):
        eng, f = rig
        tx = f.transfer("a", "b", 0)
        eng.run(until=tx.delivered)
        assert eng.now == pytest.approx(0.01)

    def test_override_larger(self, rig):
        eng, f = rig
        tx = f.transfer("a", "b", 0, injection_s=0.5)
        eng.run(until=tx.delivered)
        assert eng.now == pytest.approx(0.5)

    def test_override_zero(self, rig):
        eng, f = rig
        tx = f.transfer("a", "b", 1000, injection_s=0.0)
        eng.run(until=tx.delivered)
        assert eng.now == pytest.approx(1.0)

    def test_negative_override_rejected(self, rig):
        _, f = rig
        with pytest.raises(NetworkError, match="injection override"):
            f.transfer("a", "b", 10, injection_s=-1.0)

    def test_override_serializes_at_nic(self, rig):
        # The override is charged inside the NIC hold, so back-to-back
        # messages space out accordingly.
        eng, f = rig
        t1 = f.transfer("a", "b", 0, injection_s=0.2)
        t2 = f.transfer("a", "b", 0, injection_s=0.2)
        eng.run(until=t2.delivered)
        assert eng.now == pytest.approx(0.4)

    def test_isend_passes_override_through(self):
        from repro.mpisim import World
        eng = Engine()
        f = Fabric(eng, MODEL)
        eps = [f.add_endpoint("x"), f.add_endpoint("y")]
        comm = World(eng, f).create_comm(eps)
        r0, r1 = comm.rank(0), comm.rank(1)

        def receiver():
            msg = yield from r1.recv()
            return eng.now

        r0.isend(1, tag=0, payload=None, injection_s=0.3)
        p = eng.process(receiver())
        assert eng.run(until=p) == pytest.approx(0.3 + 64 / 1000.0)
