"""Sharded-execution identity: the partitioned engine changes nothing.

Every seeded program family (memcpy, chaos, peer, tenant) must produce
bit-identical observations — downloaded buffer bytes, sha256 trace
digests, pool membership events — on a plain :class:`~repro.sim.Engine`
and on a :class:`~repro.sim.ShardedEngine` at 1, 2, and 4 shards, both
inside one interpreter and replayed across a spawned process boundary.
The channel-confined workloads additionally run under all three sharded
execution modes (merge, rounds, multiprocess) against the single-engine
reference.
"""

import pytest

from repro.cluster import Cluster, paper_testbed
from repro.sim import (
    ShardedEngine,
    TimerChurnProgram,
    run_cooperative,
    run_multiprocess,
    run_single_reference,
)

from ..harness import SHARDED_FAMILIES, run_sharded_modes


@pytest.mark.parametrize("seed", (0, 1))
@pytest.mark.parametrize("family", SHARDED_FAMILIES)
def test_family_identical_across_shard_counts(family, seed):
    run_sharded_modes(family, seed=seed, shard_counts=(1, 2, 4))


@pytest.mark.timeout(180)
@pytest.mark.parametrize("family", SHARDED_FAMILIES)
def test_family_identical_across_process_boundary(family):
    """The 4-shard replay inside a spawned child matches the reference."""
    run_sharded_modes(family, seed=2, shard_counts=(4,), multiprocess=True)


def test_sharded_cluster_actually_uses_shards():
    """Engagement check: the identity above is not vacuous.

    A 4-shard cluster really places accelerators on shards 1..3 and the
    equivalence run really exercises cross-shard wake-ups and work on
    every populated shard.
    """
    cluster = Cluster(paper_testbed(n_compute=1, n_accelerators=4), shards=4)
    engine = cluster.engine
    assert isinstance(engine, ShardedEngine)
    assert set(cluster.shard_of_accelerator.values()) == {1, 2, 3}

    sess = cluster.session()
    handles = sess.call(cluster.arm_client(0).alloc(count=4))

    def drive(ac, fill):
        addr = yield from ac.mem_alloc(1024)
        yield from ac.memcpy_h2d(addr, bytes([fill]) * 1024)
        out = yield from ac.memcpy_d2h(addr, 1024)
        yield from ac.mem_free(addr)
        return bytes(out)

    for i, handle in enumerate(handles):
        got = sess.call(drive(cluster.remote(0, handle), 0x20 + i))
        assert got == bytes([0x20 + i]) * 1024

    assert engine.crossing_count() > 0, "no cross-shard wake-ups observed"
    active = [s.id for s in engine.shards if s.processed > 0]
    assert len(active) >= 4, f"work landed on too few shards: {active}"


def test_churn_modes_identical():
    """merge vs rounds vs single reference on channel-confined programs."""
    programs = [TimerChurnProgram(60, ping_every=7) for _ in range(3)]
    _, ref_logs = run_single_reference(programs)
    engine, coop_logs, _ = run_cooperative(programs)
    assert coop_logs == ref_logs
    assert engine.total_processed > 0
    assert all(s.processed > 0 for s in engine.shards)

    merge_engine = ShardedEngine(3, lookahead_s=1e-3)
    from repro.sim.sharded import _make_contexts
    contexts = _make_contexts(
        merge_engine,
        lambda dst: merge_engine.shards[dst].heap,
        lambda dst: dst,
        3, merge_engine.lookahead)
    for shard, program in enumerate(programs):
        with merge_engine.shard_scope(shard):
            program.setup(contexts[shard])
    merge_engine.run()
    assert [ctx.logs for ctx in contexts] == ref_logs


@pytest.mark.timeout(180)
def test_churn_multiprocess_identical():
    """One worker process per shard reproduces the single-engine logs."""
    programs = [TimerChurnProgram(40, ping_every=5) for _ in range(3)]
    _, ref_logs = run_single_reference(programs)
    mp_logs, total = run_multiprocess(programs)
    assert mp_logs == ref_logs
    assert total > 0
