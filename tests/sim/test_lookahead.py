"""Property-based tests for conservative lookahead synchronization.

The causality contract of :meth:`ShardedEngine.run_rounds`: a shard may
only batch events strictly below its safe horizon — the minimum over
every other shard of (that shard's clock + the declared link lookahead)
— and horizons only ever move forward.  Randomized shard counts, link
latency maps, and churn shapes probe the contract; zero-latency links
must still terminate (through explicit null-message ticks and
same-timestamp merge ticks) instead of deadlocking.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SimulationError
from repro.sim import (
    Event,
    ShardedEngine,
    Timeout,
    TimerChurnProgram,
    run_cooperative,
    run_single_reference,
)


def churn_programs(n_shards, n_events, ping_every):
    return [TimerChurnProgram(n_events, ping_every=ping_every)
            for _ in range(n_shards)]


def lookahead_fn(default, overrides):
    return lambda src, dst: overrides.get((src, dst), default)


#: Randomized per-link latency overrides for an ``n``-shard engine.  All
#: latencies stay at or below TimerChurnProgram's 1 ms ping delay so the
#: churn workload's sends always respect the declared lookahead.
def latency_maps(n):
    pair = st.tuples(st.integers(0, n - 1), st.integers(0, n - 1))
    return st.dictionaries(
        pair.filter(lambda p: p[0] != p[1]),
        st.floats(1e-5, 1e-3, allow_nan=False), max_size=n * (n - 1))


class TestLookaheadCausality:
    @given(st.integers(2, 4), st.integers(5, 60), st.integers(2, 9),
           st.data())
    @settings(max_examples=30, deadline=None)
    def test_batches_respect_safe_horizons(self, n, n_events, ping_every,
                                           data):
        overrides = data.draw(latency_maps(n))
        default = data.draw(st.floats(1e-5, 1e-3, allow_nan=False))
        look = lookahead_fn(default, overrides)
        programs = churn_programs(n, n_events, ping_every)
        engine, logs, causality = run_cooperative(
            programs, lookahead_s=default, lookahead_map=overrides,
            record=True)
        assert causality, "rounds execution recorded no batches"
        for shard, event_time, horizon, clocks in causality:
            # The batched event lies strictly inside the safe window...
            assert event_time < horizon
            # ...and the horizon never exceeded what the other shards'
            # clocks plus the declared link lookahead guaranteed.
            bound = min(clocks[o] + look(o, shard)
                        for o in range(n) if o != shard)
            assert horizon <= bound + 1e-15

    @given(st.integers(2, 4), st.integers(5, 40), st.integers(2, 9))
    @settings(max_examples=30, deadline=None)
    def test_per_shard_horizons_monotone(self, n, n_events, ping_every):
        programs = churn_programs(n, n_events, ping_every)
        _, _, causality = run_cooperative(programs, record=True)
        last: dict[int, float] = {}
        for shard, _, horizon, _ in causality:
            assert horizon >= last.get(shard, 0.0), (
                f"shard {shard} horizon moved backwards")
            last[shard] = horizon

    @given(st.integers(2, 4), st.integers(5, 40), st.integers(2, 9),
           st.data())
    @settings(max_examples=30, deadline=None)
    def test_rounds_match_single_reference(self, n, n_events, ping_every,
                                           data):
        overrides = data.draw(latency_maps(n))
        programs = churn_programs(n, n_events, ping_every)
        _, ref_logs = run_single_reference(programs,
                                           lookahead_map=overrides)
        _, coop_logs, _ = run_cooperative(programs,
                                          lookahead_map=overrides)
        assert coop_logs == ref_logs


class TestZeroLatencyLinks:
    @given(st.integers(2, 4), st.integers(5, 40), st.integers(0, 9))
    @settings(max_examples=30, deadline=None)
    def test_zero_lookahead_terminates_and_matches(self, n, n_events,
                                                   ping_every):
        """L=0 gives no safe window at all: progress must come from the
        explicit null-message ticks (clock jumps to the next global event
        time) and same-timestamp merge ticks, never from batching."""
        programs = churn_programs(n, n_events, ping_every)
        _, ref_logs = run_single_reference(programs, lookahead_s=0.0)
        engine, coop_logs, _ = run_cooperative(programs, lookahead_s=0.0)
        assert coop_logs == ref_logs
        assert engine.merge_ticks > 0
        assert engine.total_processed > 0

    def test_null_ticks_advance_idle_shards(self):
        """A shard with no events of its own still null-ticks forward, so
        busy neighbours are never blocked on its frozen clock."""
        programs = [TimerChurnProgram(50), TimerChurnProgram(0)]
        engine, _, _ = run_cooperative(programs, lookahead_s=1e-6)
        assert engine.null_ticks > 0
        assert engine.shards[1].clock >= engine.shards[0].clock - 1e-6


class TestChannelContract:
    def test_send_below_lookahead_raises(self):
        class Eager(TimerChurnProgram):
            def setup(self, ctx):
                def prog():
                    yield Timeout(ctx.engine, 1e-6)
                    ctx.send(1 - ctx.shard, 1e-5, "too-fast", None)
                ctx.engine.process(prog())

        with pytest.raises(SimulationError, match="below the declared"):
            run_cooperative([Eager(0), Eager(0)], lookahead_s=1e-3)

    def test_send_to_local_shard_raises(self):
        class Selfie(TimerChurnProgram):
            def setup(self, ctx):
                def prog():
                    yield Timeout(ctx.engine, 1e-6)
                    ctx.send(ctx.shard, 1e-3, "loopback", None)
                ctx.engine.process(prog())

        with pytest.raises(SimulationError, match="local shard"):
            run_cooperative([Selfie(0), Selfie(0)])

    def test_cross_shard_wakeup_raises_in_rounds_mode(self):
        """Direct event wake-ups across shards break the lookahead
        promise, so round execution refuses them loudly instead of
        silently reordering."""
        engine = ShardedEngine(2, lookahead_s=1e-3)
        with engine.shard_scope(0):
            gate = Event(engine)

            def waiter():
                yield gate

            engine.process(waiter())
        with engine.shard_scope(1):
            def poker():
                yield Timeout(engine, 1e-6)
                gate.succeed()

            engine.process(poker())
        with pytest.raises(SimulationError, match="cross-shard wake-up"):
            engine.run_rounds()

    def test_cross_shard_wakeup_allowed_in_merge_mode(self):
        """The same workload is legal under the global-merge oracle."""
        engine = ShardedEngine(2, lookahead_s=1e-3)
        woken = []
        with engine.shard_scope(0):
            gate = Event(engine)

            def waiter():
                yield gate
                woken.append(engine.now)

            engine.process(waiter())
        with engine.shard_scope(1):
            def poker():
                yield Timeout(engine, 1e-6)
                gate.succeed()

            engine.process(poker())
        engine.run()
        assert woken == [1e-6]
        assert engine.crossing_count() > 0
