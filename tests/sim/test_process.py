"""Unit tests for generator-based processes."""

import pytest

from repro.errors import ProcessInterrupt, SimulationError
from repro.sim import Engine


@pytest.fixture
def eng():
    return Engine()


class TestProcessBasics:
    def test_process_runs_and_returns(self, eng):
        def proc():
            yield eng.timeout(1.0)
            yield eng.timeout(2.0)
            return "done"

        p = eng.process(proc())
        result = eng.run(until=p)
        assert result == "done"
        assert eng.now == 3.0

    def test_process_does_not_run_before_engine(self, eng):
        ran = []

        def proc():
            ran.append(True)
            yield eng.timeout(0.0)

        eng.process(proc())
        assert ran == []  # nothing until run()
        eng.run()
        assert ran == [True]

    def test_timeout_value_delivered(self, eng):
        def proc():
            v = yield eng.timeout(1.0, value="tick")
            return v

        p = eng.process(proc())
        assert eng.run(until=p) == "tick"

    def test_process_waits_on_process(self, eng):
        def child():
            yield eng.timeout(5.0)
            return 99

        def parent():
            v = yield eng.process(child())
            return v + 1

        p = eng.process(parent())
        assert eng.run(until=p) == 100
        assert eng.now == 5.0

    def test_yield_already_processed_event(self, eng):
        ev = eng.event().succeed("early")

        def proc():
            yield eng.timeout(1.0)
            v = yield ev  # processed long ago — must resume synchronously
            return v

        p = eng.process(proc())
        assert eng.run(until=p) == "early"
        assert eng.now == 1.0

    def test_yield_non_event_raises(self, eng):
        def proc():
            yield 42

        eng.process(proc())
        with pytest.raises(SimulationError, match="expected an Event"):
            eng.run()

    def test_non_generator_rejected(self, eng):
        with pytest.raises(SimulationError):
            eng.process(lambda: None)

    def test_failed_event_throws_into_process(self, eng):
        ev = eng.event()

        def failer():
            yield eng.timeout(1.0)
            ev.fail(ValueError("bad"))

        def proc():
            try:
                yield ev
            except ValueError as exc:
                return f"caught {exc}"

        eng.process(failer())
        p = eng.process(proc())
        assert eng.run(until=p) == "caught bad"

    def test_uncaught_exception_propagates_to_waiter(self, eng):
        def child():
            yield eng.timeout(1.0)
            raise RuntimeError("child crashed")

        def parent():
            yield eng.process(child())

        p = eng.process(parent())
        with pytest.raises(RuntimeError, match="child crashed"):
            eng.run(until=p)

    def test_unwaited_crash_surfaces(self, eng):
        def proc():
            yield eng.timeout(1.0)
            raise RuntimeError("nobody is listening")

        eng.process(proc())
        with pytest.raises(RuntimeError, match="nobody is listening"):
            eng.run()


class TestInterrupt:
    def test_interrupt_delivers_cause(self, eng):
        def victim():
            try:
                yield eng.timeout(100.0)
            except ProcessInterrupt as exc:
                return ("interrupted", exc.cause, eng.now)
            return "not reached"

        v = eng.process(victim())

        def attacker():
            yield eng.timeout(2.0)
            v.interrupt(cause="fault")

        eng.process(attacker())
        assert eng.run(until=v) == ("interrupted", "fault", 2.0)

    def test_stale_wakeup_ignored_after_interrupt(self, eng):
        resumes = []

        def victim():
            try:
                yield eng.timeout(3.0, value="timer")
            except ProcessInterrupt:
                resumes.append("interrupt")
            yield eng.timeout(10.0)
            resumes.append("after")

        v = eng.process(victim())

        def attacker():
            yield eng.timeout(1.0)
            v.interrupt()

        eng.process(attacker())
        eng.run()
        # The abandoned 3.0s timer must not resume the process a second time.
        assert resumes == ["interrupt", "after"]
        assert eng.now == 11.0

    def test_unhandled_interrupt_fails_process(self, eng):
        def victim():
            yield eng.timeout(100.0)

        v = eng.process(victim())

        def attacker():
            yield eng.timeout(1.0)
            v.interrupt()

        eng.process(attacker())
        with pytest.raises(ProcessInterrupt):
            eng.run(until=v)

    def test_interrupt_finished_process_raises(self, eng):
        def quick():
            yield eng.timeout(1.0)

        p = eng.process(quick())
        eng.run(until=p)
        with pytest.raises(SimulationError):
            p.interrupt()


class TestEngineRun:
    def test_run_until_time(self, eng):
        hits = []

        def ticker():
            while True:
                yield eng.timeout(1.0)
                hits.append(eng.now)

        eng.process(ticker())
        eng.run(until=4.5)
        assert hits == [1.0, 2.0, 3.0, 4.0]
        assert eng.now == 4.5

    def test_run_until_past_raises(self, eng):
        eng.process(iter_timeout(eng, 5.0))
        eng.run(until=3.0)
        with pytest.raises(SimulationError):
            eng.run(until=1.0)

    def test_deadlock_detected(self, eng):
        ev = eng.event()  # never triggered

        def proc():
            yield ev

        p = eng.process(proc())
        with pytest.raises(SimulationError, match="deadlock"):
            eng.run(until=p)

    def test_engine_not_reentrant(self, eng):
        def proc():
            eng.run()
            yield eng.timeout(1.0)

        eng.process(proc())
        with pytest.raises(SimulationError, match="not reentrant"):
            eng.run()

    def test_step_on_empty_queue_raises(self, eng):
        with pytest.raises(SimulationError):
            eng.step()

    def test_clock_never_goes_backwards(self, eng):
        stamps = []

        def proc(delay):
            yield eng.timeout(delay)
            stamps.append(eng.now)

        for d in [5.0, 1.0, 3.0, 1.0, 0.0]:
            eng.process(proc(d))
        eng.run()
        assert stamps == sorted(stamps)


def iter_timeout(eng, delay):
    yield eng.timeout(delay)
