"""Unit tests for Store, Resource, and BandwidthShare."""

import pytest

from repro.errors import SimulationError
from repro.sim import BandwidthShare, Engine, Resource, Store


@pytest.fixture
def eng():
    return Engine()


class TestStore:
    def test_put_then_get(self, eng):
        store = Store(eng)

        def producer():
            yield store.put("a")
            yield store.put("b")

        def consumer():
            x = yield store.get()
            y = yield store.get()
            return (x, y)

        eng.process(producer())
        c = eng.process(consumer())
        assert eng.run(until=c) == ("a", "b")

    def test_get_blocks_until_put(self, eng):
        store = Store(eng)
        got_at = []

        def consumer():
            v = yield store.get()
            got_at.append((eng.now, v))

        def producer():
            yield eng.timeout(2.0)
            yield store.put("late")

        eng.process(consumer())
        eng.process(producer())
        eng.run()
        assert got_at == [(2.0, "late")]

    def test_fifo_order_of_items(self, eng):
        store = Store(eng)
        out = []

        def producer():
            for i in range(5):
                yield store.put(i)

        def consumer():
            for _ in range(5):
                v = yield store.get()
                out.append(v)

        eng.process(producer())
        eng.process(consumer())
        eng.run()
        assert out == [0, 1, 2, 3, 4]

    def test_fifo_order_of_getters(self, eng):
        store = Store(eng)
        served = []

        def consumer(name):
            v = yield store.get()
            served.append((name, v))

        eng.process(consumer("first"))
        eng.process(consumer("second"))

        def producer():
            yield eng.timeout(1.0)
            yield store.put("x")
            yield store.put("y")

        eng.process(producer())
        eng.run()
        assert served == [("first", "x"), ("second", "y")]

    def test_capacity_blocks_put(self, eng):
        store = Store(eng, capacity=1)
        timeline = []

        def producer():
            yield store.put("a")
            timeline.append(("put-a", eng.now))
            yield store.put("b")
            timeline.append(("put-b", eng.now))

        def consumer():
            yield eng.timeout(5.0)
            v = yield store.get()
            timeline.append(("got", v, eng.now))

        eng.process(producer())
        eng.process(consumer())
        eng.run()
        assert ("put-a", 0.0) in timeline
        assert ("put-b", 5.0) in timeline  # second put waited for the get

    def test_bad_capacity_rejected(self, eng):
        with pytest.raises(SimulationError):
            Store(eng, capacity=0)

    def test_len(self, eng):
        store = Store(eng)

        def producer():
            yield store.put(1)
            yield store.put(2)

        p = eng.process(producer())
        eng.run(until=p)
        assert len(store) == 2


class TestResource:
    def test_mutex_serializes(self, eng):
        lock = Resource(eng, capacity=1)
        timeline = []

        def worker(name, hold):
            yield lock.acquire()
            timeline.append((name, "in", eng.now))
            yield eng.timeout(hold)
            timeline.append((name, "out", eng.now))
            lock.release()

        eng.process(worker("a", 2.0))
        eng.process(worker("b", 3.0))
        eng.run()
        assert timeline == [
            ("a", "in", 0.0),
            ("a", "out", 2.0),
            ("b", "in", 2.0),
            ("b", "out", 5.0),
        ]

    def test_capacity_two_allows_parallel(self, eng):
        res = Resource(eng, capacity=2)
        done_at = {}

        def worker(name):
            yield res.acquire()
            yield eng.timeout(1.0)
            res.release()
            done_at[name] = eng.now

        for n in "abc":
            eng.process(worker(n))
        eng.run()
        assert done_at["a"] == 1.0
        assert done_at["b"] == 1.0
        assert done_at["c"] == 2.0

    def test_release_without_acquire_raises(self, eng):
        res = Resource(eng)
        with pytest.raises(SimulationError):
            res.release()

    def test_available_accounting(self, eng):
        res = Resource(eng, capacity=3)

        def worker():
            yield res.acquire()

        p = eng.process(worker())
        eng.run(until=p)
        assert res.in_use == 1
        assert res.available == 2

    def test_bad_capacity_rejected(self, eng):
        with pytest.raises(SimulationError):
            Resource(eng, capacity=0)


class TestBandwidthShare:
    def test_single_flow_exact_time(self, eng):
        link = BandwidthShare(eng, capacity_bytes_per_s=100.0)

        def proc():
            yield link.transfer(250.0)
            return eng.now

        p = eng.process(proc())
        assert eng.run(until=p) == pytest.approx(2.5)

    def test_zero_bytes_completes_immediately(self, eng):
        link = BandwidthShare(eng, 100.0)

        def proc():
            yield link.transfer(0)
            return eng.now

        p = eng.process(proc())
        assert eng.run(until=p) == 0.0

    def test_two_equal_flows_share_fairly(self, eng):
        link = BandwidthShare(eng, 100.0)
        done = {}

        def proc(name, nbytes):
            yield link.transfer(nbytes)
            done[name] = eng.now

        eng.process(proc("a", 100.0))
        eng.process(proc("b", 100.0))
        eng.run()
        # Both share 100 B/s -> each runs at 50 B/s -> both done at t=2.
        assert done["a"] == pytest.approx(2.0)
        assert done["b"] == pytest.approx(2.0)

    def test_short_flow_finishes_then_long_speeds_up(self, eng):
        link = BandwidthShare(eng, 100.0)
        done = {}

        def proc(name, nbytes):
            yield link.transfer(nbytes)
            done[name] = eng.now

        eng.process(proc("short", 50.0))
        eng.process(proc("long", 150.0))
        eng.run()
        # Shared at 50 B/s until short finishes at t=1 (long has 100 left),
        # then long runs at full 100 B/s -> finishes at t=2.
        assert done["short"] == pytest.approx(1.0)
        assert done["long"] == pytest.approx(2.0)

    def test_late_joiner_slows_existing_flow(self, eng):
        link = BandwidthShare(eng, 100.0)
        done = {}

        def first():
            yield link.transfer(100.0)
            done["first"] = eng.now

        def second():
            yield eng.timeout(0.5)
            yield link.transfer(25.0)
            done["second"] = eng.now

        eng.process(first())
        eng.process(second())
        eng.run()
        # first: 50 B alone (0.5s), then shares: needs 50 more at 50 B/s = 1s
        # unless second finishes earlier: second needs 25 B at 50 B/s = 0.5s,
        # done at t=1.0. Then first has 25 B left at 100 B/s -> t=1.25.
        assert done["second"] == pytest.approx(1.0)
        assert done["first"] == pytest.approx(1.25)

    def test_weighted_flows(self, eng):
        link = BandwidthShare(eng, 90.0)
        done = {}

        def proc(name, nbytes, w):
            yield link.transfer(nbytes, weight=w)
            done[name] = eng.now

        eng.process(proc("heavy", 60.0, 2.0))
        eng.process(proc("light", 30.0, 1.0))
        eng.run()
        # heavy gets 60 B/s, light 30 B/s: both finish at t=1.
        assert done["heavy"] == pytest.approx(1.0)
        assert done["light"] == pytest.approx(1.0)

    def test_negative_size_rejected(self, eng):
        link = BandwidthShare(eng, 10.0)
        with pytest.raises(SimulationError):
            link.transfer(-1)

    def test_bad_capacity_rejected(self, eng):
        with pytest.raises(SimulationError):
            BandwidthShare(eng, 0.0)

    def test_many_sequential_flows_total_time(self, eng):
        link = BandwidthShare(eng, 1000.0)

        def proc():
            for _ in range(10):
                yield link.transfer(500.0)
            return eng.now

        p = eng.process(proc())
        assert eng.run(until=p) == pytest.approx(5.0)
