"""Engine hot-path machinery: lazy deletion, compaction, slot pools.

The perf work (PR 5) replaced eager heap removal with lazy deletion plus
periodic in-place compaction, and recycles the two high-churn timer
types (``race()`` deadlines, ``pooled_timer`` timeouts) through slot
pools.  These tests pin the observable contracts: live-event accounting
stays exact, compaction never loses a live event or breaks the running
loop's heap binding, pooled objects are only reused after retirement,
and the deadlock diagnostic still fires.
"""

import pytest

from repro.errors import SimulationError
from repro.sim import Engine
from repro.sim.events import Deadline, Timeout


def test_cancelled_events_are_lazily_deleted():
    eng = Engine()
    timers = [eng.timeout(0.1 * (i + 1)) for i in range(10)]
    for t in timers[:4]:
        t.cancel()
    # Dead entries stay in the heap (lazy deletion) but queued is exact.
    assert len(eng._heap) == 10
    assert eng.queued == 6
    eng.run()
    assert eng.now == pytest.approx(1.0)
    assert eng.queued == 0


def test_compaction_rebuilds_in_place_and_keeps_live_events():
    eng = Engine()
    n = max(Engine.COMPACT_MIN, 100)
    timers = [eng.timeout(0.001 * (i + 1)) for i in range(n)]
    heap_id = id(eng._heap)
    dead = (n * 6) // 10  # kill >50% to cross the threshold mid-loop
    for t in timers[:dead]:
        t.cancel()
    assert len(eng._heap) < n, "compaction never ran"
    assert id(eng._heap) == heap_id, "compaction must rewrite in place"
    assert eng.queued == n - dead
    fired = []
    for t in timers[dead:]:
        t.add_callback(lambda ev: fired.append(eng.now))
    eng.run()
    assert len(fired) == n - dead
    assert fired == sorted(fired)


def test_peek_and_step_skip_dead_prefix():
    eng = Engine()
    t1 = eng.timeout(0.1)
    t2 = eng.timeout(0.2)
    t1.cancel()
    assert eng.peek() == pytest.approx(0.2)
    eng.step()
    assert t2.processed
    assert eng.peek() == float("inf")


def test_race_deadline_slot_is_reused_after_retirement():
    eng = Engine()
    reply = eng.timeout(0.1)
    cond, dl = eng.race(reply, 5.0)
    assert type(dl) is Deadline
    eng.run(until=cond)
    assert reply.triggered
    dl.cancel()
    eng.run()  # drains the heap; the dead deadline entry is retired
    cond2, dl2 = eng.race(eng.timeout(0.1), 3.0)
    assert dl2 is dl, "retired deadline should be slot-reused"
    eng.run(until=cond2)
    dl2.cancel()


def test_pooled_timer_is_reused_and_fires_at_new_delay():
    eng = Engine()
    t = eng.pooled_timer(1.0)
    t.cancel()
    eng.run()  # retire the cancelled entry
    t2 = eng.pooled_timer(2.0)
    assert t2 is t, "retired pooled timer should be slot-reused"
    eng.run()
    assert t2.processed
    assert eng.now == pytest.approx(2.0)


def test_plain_timeouts_are_never_pooled():
    eng = Engine()
    t = eng.timeout(1.0)
    t.cancel()
    eng.run()
    t2 = eng.pooled_timer(1.0)
    assert t2 is not t
    assert type(t2) is Timeout


def test_pool_respects_size_bound():
    eng = Engine()
    timers = [eng.pooled_timer(1.0) for _ in range(Engine.POOL_MAX + 10)]
    for t in timers:
        t.cancel()
    eng.run()
    assert len(eng._timeout_pool) <= Engine.POOL_MAX


def test_deadlock_detection_still_raises():
    eng = Engine()
    never = eng.event()
    with pytest.raises(SimulationError, match="deadlock"):
        eng.run(until=never)


def test_run_until_horizon_pushes_back_the_far_event():
    eng = Engine()
    t = eng.timeout(5.0)
    eng.run(until=1.0)
    assert eng.now == pytest.approx(1.0)
    assert eng.queued == 1, "the not-yet-due event must survive the horizon"
    eng.run()
    assert t.processed
    assert eng.now == pytest.approx(5.0)


def test_cancel_then_compact_during_run_keeps_loop_alive():
    """Compaction triggered from inside a running process is safe.

    The run loop binds the heap list locally; in-place compaction while
    events are being processed must not detach that binding or drop any
    live timer.
    """
    eng = Engine()
    seen = []

    def churn():
        for _ in range(6):
            victims = [eng.pooled_timer(10.0)
                       for _ in range(Engine.COMPACT_MIN)]
            tick = eng.timeout(0.001)
            for v in victims:
                v.cancel()
            yield tick
            seen.append(eng.now)

    eng.process(churn())
    eng.run()
    assert len(seen) == 6
    assert seen == sorted(seen)
    assert eng.queued == 0
