"""Property-based tests for the simulation kernel."""

import heapq

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim import BandwidthShare, Engine


class TestClockProperties:
    @given(st.lists(st.floats(0.0, 1e6, allow_nan=False), min_size=1,
                    max_size=100))
    @settings(max_examples=200, deadline=None)
    def test_timeouts_process_in_sorted_order(self, delays):
        eng = Engine()
        seen = []
        for d in delays:
            eng.timeout(d, value=d).add_callback(lambda e: seen.append(e.value))
        eng.run()
        assert seen == sorted(delays)
        assert eng.now == max(delays)

    @given(st.lists(st.tuples(st.floats(0.0, 100.0, allow_nan=False),
                              st.floats(0.0, 100.0, allow_nan=False)),
                    min_size=1, max_size=50))
    @settings(max_examples=100, deadline=None)
    def test_nested_process_clock_monotone(self, pairs):
        eng = Engine()
        stamps = []

        def proc(a, b):
            yield eng.timeout(a)
            stamps.append(eng.now)
            yield eng.timeout(b)
            stamps.append(eng.now)

        for a, b in pairs:
            eng.process(proc(a, b))
        eng.run()
        assert stamps == sorted(stamps)
        assert len(stamps) == 2 * len(pairs)

    @given(st.integers(1, 60), st.integers(0, 2**31 - 1))
    @settings(max_examples=50, deadline=None)
    def test_interleaved_producers_consumers_conserve_items(self, n, seed):
        import random
        rng = random.Random(seed)
        from repro.sim import Store
        eng = Engine()
        store = Store(eng)
        produced, consumed = [], []

        def producer(items):
            for it in items:
                yield eng.timeout(rng.random())
                yield store.put(it)
                produced.append(it)

        def consumer(count):
            for _ in range(count):
                v = yield store.get()
                consumed.append(v)

        items = list(range(n))
        eng.process(producer(items))
        p = eng.process(consumer(n))
        eng.run(until=p)
        assert sorted(consumed) == items
        assert consumed == produced  # FIFO


class TestBandwidthShareProperties:
    @given(st.lists(st.tuples(st.floats(0.0, 10.0, allow_nan=False),
                              st.floats(1.0, 10_000.0, allow_nan=False)),
                    min_size=1, max_size=20),
           st.floats(10.0, 10_000.0, allow_nan=False))
    @settings(max_examples=100, deadline=None)
    def test_all_flows_complete_and_capacity_respected(self, flows, capacity):
        eng = Engine()
        share = BandwidthShare(eng, capacity)
        done_times = []
        total_bytes = sum(nb for _, nb in flows)

        def flow(start, nbytes):
            if start > 0:
                yield eng.timeout(start)
            yield share.transfer(nbytes)
            done_times.append(eng.now)

        for start, nbytes in flows:
            eng.process(flow(start, nbytes))
        eng.run()
        assert len(done_times) == len(flows)
        # The pool can never move bytes faster than its capacity allows.
        first_start = min(s for s, _ in flows)
        makespan = max(done_times) - first_start
        assert makespan * capacity >= total_bytes * (1 - 1e-6)

    @given(st.lists(st.floats(1.0, 1000.0, allow_nan=False),
                    min_size=2, max_size=10))
    @settings(max_examples=100, deadline=None)
    def test_simultaneous_flows_finish_in_size_order(self, sizes):
        eng = Engine()
        share = BandwidthShare(eng, 100.0)
        finish = {}

        def flow(i, nbytes):
            yield share.transfer(nbytes)
            finish[i] = eng.now

        for i, nb in enumerate(sizes):
            eng.process(flow(i, nb))
        eng.run()
        order = sorted(range(len(sizes)), key=lambda i: finish[i])
        # Equal-share flows drain smallest-first.
        for a, b in zip(order, order[1:]):
            assert sizes[a] <= sizes[b] + 1e-6

    def test_many_tiny_flows_terminate(self):
        # Regression guard for the float-residue infinite-timer loop.
        eng = Engine()
        share = BandwidthShare(eng, 2660 * 1024 * 1024.0)
        events = [share.transfer(524288 + 64) for _ in range(256)]
        eng.run(until=eng.all_of(events))
        assert eng.now > 0
