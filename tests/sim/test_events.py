"""Unit tests for the event primitives."""

import pytest

from repro.errors import SimulationError
from repro.sim import AllOf, AnyOf, Deadline, Engine, Event, Timeout


@pytest.fixture
def eng():
    return Engine()


class TestEvent:
    def test_starts_pending(self, eng):
        ev = eng.event()
        assert not ev.triggered
        assert not ev.processed

    def test_value_before_trigger_raises(self, eng):
        ev = eng.event()
        with pytest.raises(SimulationError):
            _ = ev.value
        with pytest.raises(SimulationError):
            _ = ev.ok

    def test_succeed_carries_value(self, eng):
        ev = eng.event()
        ev.succeed(42)
        assert ev.triggered
        assert ev.ok
        assert ev.value == 42

    def test_double_trigger_raises(self, eng):
        ev = eng.event().succeed(1)
        with pytest.raises(SimulationError):
            ev.succeed(2)
        with pytest.raises(SimulationError):
            ev.fail(RuntimeError("x"))

    def test_fail_requires_exception(self, eng):
        ev = eng.event()
        with pytest.raises(SimulationError):
            ev.fail("not an exception")

    def test_fail_carries_exception(self, eng):
        ev = eng.event()
        exc = RuntimeError("boom")
        ev.fail(exc)
        assert ev.triggered
        assert not ev.ok
        assert ev.value is exc

    def test_callbacks_run_on_processing(self, eng):
        ev = eng.event()
        seen = []
        ev.add_callback(lambda e: seen.append(e.value))
        ev.succeed("hello")
        assert seen == []  # not yet processed
        eng.run()
        assert seen == ["hello"]

    def test_late_callback_runs_immediately(self, eng):
        ev = eng.event().succeed(7)
        eng.run()
        seen = []
        ev.add_callback(lambda e: seen.append(e.value))
        assert seen == [7]

    def test_cancel_prevents_processing(self, eng):
        ev = eng.timeout(1.0)
        seen = []
        ev.add_callback(lambda e: seen.append(1))
        ev.cancel()
        eng.run()
        assert seen == []
        assert eng.now == 0.0  # cancelled timer does not advance the clock

    def test_cancel_processed_event_raises(self, eng):
        ev = eng.event().succeed(None)
        eng.run()
        with pytest.raises(SimulationError):
            ev.cancel()

    def test_trigger_cancelled_event_raises(self, eng):
        ev = eng.event()
        ev.cancel()
        with pytest.raises(SimulationError):
            ev.succeed(None)


class TestTimeout:
    def test_fires_at_delay(self, eng):
        times = []
        ev = eng.timeout(2.5)
        ev.add_callback(lambda e: times.append(eng.now))
        eng.run()
        assert times == [2.5]

    def test_carries_value(self, eng):
        ev = eng.timeout(1.0, value="tick")
        eng.run()
        assert ev.value == "tick"

    def test_negative_delay_raises(self, eng):
        with pytest.raises(SimulationError):
            eng.timeout(-1.0)

    def test_zero_delay_fires_now(self, eng):
        ev = eng.timeout(0.0)
        eng.run()
        assert ev.processed
        assert eng.now == 0.0

    def test_manual_trigger_forbidden(self, eng):
        ev = eng.timeout(1.0)
        with pytest.raises(SimulationError):
            ev.succeed(1)
        with pytest.raises(SimulationError):
            ev.fail(RuntimeError())

    def test_ordering_among_timeouts(self, eng):
        order = []
        for delay, label in [(3.0, "c"), (1.0, "a"), (2.0, "b")]:
            eng.timeout(delay, label).add_callback(lambda e: order.append(e.value))
        eng.run()
        assert order == ["a", "b", "c"]

    def test_fifo_at_equal_time(self, eng):
        order = []
        for label in "abc":
            eng.timeout(1.0, label).add_callback(lambda e: order.append(e.value))
        eng.run()
        assert order == ["a", "b", "c"]


class TestRace:
    def test_event_wins_race(self, eng):
        ev = eng.timeout(1.0, value="work")
        cond, dl = eng.race(ev, 5.0)
        eng.run(until=cond)
        assert ev.processed and not dl.processed
        assert eng.now == 1.0
        dl.cancel()  # provisional timer; engine queue drains clean
        eng.run()
        assert not dl.processed

    def test_deadline_wins_race(self, eng):
        ev = eng.timeout(10.0)
        cond, dl = eng.race(ev, 2.0)
        eng.run(until=cond)
        assert dl.processed and not ev.processed
        assert eng.now == 2.0

    def test_deadline_is_marker_subclass(self, eng):
        _, dl = eng.race(eng.timeout(1.0), 2.0)
        assert isinstance(dl, Deadline)
        assert isinstance(dl, Timeout)
        assert isinstance(eng.deadline(1.0), Deadline)


class TestConditions:
    def test_all_of_waits_for_all(self, eng):
        evs = [eng.timeout(1.0, "x"), eng.timeout(3.0, "y")]
        cond = eng.all_of(evs)
        fired_at = []
        cond.add_callback(lambda e: fired_at.append(eng.now))
        eng.run()
        assert fired_at == [3.0]
        assert cond.value == {evs[0]: "x", evs[1]: "y"}

    def test_all_of_empty_succeeds_immediately(self, eng):
        cond = eng.all_of([])
        eng.run()
        assert cond.processed
        assert cond.value == {}

    def test_any_of_fires_on_first(self, eng):
        evs = [eng.timeout(5.0, "slow"), eng.timeout(1.0, "fast")]
        cond = eng.any_of(evs)
        fired_at = []
        cond.add_callback(lambda e: fired_at.append(eng.now))
        eng.run()
        assert fired_at == [1.0]
        assert evs[1] in cond.value

    def test_any_of_empty_raises(self, eng):
        with pytest.raises(SimulationError):
            eng.any_of([])

    def test_all_of_propagates_failure(self, eng):
        good = eng.timeout(1.0)
        bad = eng.event()
        cond = eng.all_of([good, bad])
        bad.fail(ValueError("child failed"))
        eng.run()
        assert cond.triggered
        assert not cond.ok
        assert isinstance(cond.value, ValueError)

    def test_mixed_engines_rejected(self, eng):
        other = Engine()
        with pytest.raises(SimulationError):
            eng.all_of([eng.event(), other.event()])
