"""Timer slot-pool regressions: recycling must stay engine/shard-local.

The bug class under test: :meth:`Engine.race` deadlines and
:meth:`Engine.pooled_timer` timers are recycled through per-engine slot
pools once cancelled *and popped from the heap*.  If an instance whose
(cancelled) heap entry is still scheduled anywhere were ever re-armed —
e.g. recycled from one shard's pool while its twin entry sits in a
neighbour shard's heap — re-arming would clear ``_cancelled`` and the
stale entry would fire the timer spuriously at its old time.  The
:meth:`Timeout._rearm` guard turns any such path into a loud error, and
the sharded engine keeps one pool per shard so the sanctioned path can
never hit it.
"""

import pytest

from repro.errors import SimulationError
from repro.sim import Engine, Event, ShardedEngine
from repro.sim.events import Deadline


class TestRearmGuard:
    def test_rearm_while_scheduled_raises(self):
        """The regression guard itself: a timer whose heap entry is still
        scheduled must refuse to re-arm instead of firing spuriously."""
        eng = Engine()
        t = eng.pooled_timer(1.0)
        # Simulate the bug: the still-scheduled timer leaks into the pool
        # (e.g. via non-shard-local recycling).  The next pooled_timer()
        # recycles it and must hit the guard.
        eng._timeout_pool.append(t)
        with pytest.raises(SimulationError, match="still scheduled"):
            eng.pooled_timer(2.0)

    def test_recycled_deadline_cannot_fire_at_stale_time(self):
        """The sanctioned recycle path: cancelled, popped, re-armed — the
        reused object fires exactly once, at the new time only."""
        eng = Engine()
        reply = Event(eng)
        cond, dl = eng.race(reply, 0.5)
        eng.timeout(0.1).add_callback(lambda _e: reply.succeed("ok"))
        eng.run(until=cond)
        assert reply.triggered and not dl.processed
        dl.cancel()
        eng.run(until=1.0)  # drain past the stale entry so dl is retired
        assert eng._deadline_pool and eng._deadline_pool[-1] is dl

        fired = []
        reply2 = Event(eng)
        cond2, dl2 = eng.race(reply2, 3.0)
        assert dl2 is dl, "pool did not recycle the retired deadline"
        dl2.add_callback(lambda e: fired.append(eng.now))
        eng.run(until=5.0)
        # One fire, at now+3.0 — never at the stale 0.5 s deadline.
        assert fired == [4.0]

    def test_cancel_charges_the_owning_shard(self):
        """A cancel issued from another shard's context must charge the
        heap that actually holds the entry (``_scheduled`` stores the
        owning shard), keeping lazy-deletion accounting exact."""
        eng = ShardedEngine(2)
        with eng.shard_scope(1):
            t = eng.timeout(1.0)
        assert t._scheduled == 2  # shard 1, stored as shard + 1
        assert eng._active_shard == 0
        t.cancel()  # from shard 0's context
        assert eng.shards[1].n_dead == 1
        assert eng.shards[0].n_dead == 0 and eng._n_dead == 0
        assert eng.queued == 0


class TestShardLocalPools:
    def test_pools_do_not_leak_across_shards(self):
        """A cancelled deadline whose entry still sits in shard 1's heap
        must not be recyclable from shard 0: each shard keeps its own
        pool, so shard 0 allocates fresh instead of re-arming the twin."""
        eng = ShardedEngine(2)
        with eng.shard_scope(1):
            reply = Event(eng)
            cond1, dl1 = eng.race(reply, 0.5)
            dl1.cancel()  # still scheduled in shard 1's heap
        assert dl1._scheduled == 2
        assert not eng._deadline_pool, "cancelled twin leaked into a pool"

        reply0 = Event(eng)
        cond0, dl0 = eng.race(reply0, 0.25)
        assert dl0 is not dl1, "recycled a deadline scheduled on shard 1"

        fired = []
        dl0.add_callback(lambda e: fired.append((0, eng.now)))
        eng.run(until=1.0)
        assert fired == [(0, 0.25)], "spurious or missing deadline fire"

    def test_retired_deadline_recycles_within_its_shard(self):
        eng = ShardedEngine(2)
        with eng.shard_scope(1):
            reply = Event(eng)
            _, dl = eng.race(reply, 0.5)
            dl.cancel()
        eng.run(until=1.0)  # drains shard 1's heap, retiring the deadline
        assert eng.shards[1].deadline_pool[-1] is dl
        assert not eng.shards[0].deadline_pool
        with eng.shard_scope(1):
            _, dl2 = eng.race(Event(eng), 0.5)
        assert dl2 is dl


class TestPoolOverflow:
    def test_pool_max_caps_both_pools(self):
        """POOL_MAX-overflow stress: cancel far more poolable timers than
        the pool holds; the pool stays capped and the engine keeps exact
        accounting and ordering."""
        eng = Engine()
        n = eng.POOL_MAX * 3
        # Create everything first (an empty pool means every instance is
        # fresh), then cancel; retirement may only fill pools to the cap.
        timers = [eng.pooled_timer(1.0) for _ in range(n)]
        deadlines = [eng.race(Event(eng), 1.0)[1] for _ in range(n)]
        for ev in timers + deadlines:
            ev.cancel()
        eng.run(until=2.0)
        assert len(eng._timeout_pool) == eng.POOL_MAX
        assert len(eng._deadline_pool) == eng.POOL_MAX
        assert eng.queued == 0

        # The engine is still healthy: fresh timers fire in order.
        seen = []
        for d in (0.3, 0.1, 0.2):
            eng.timeout(d, value=d).add_callback(
                lambda e: seen.append(e.value))
        eng.run()
        assert seen == [0.1, 0.2, 0.3]

    def test_overflow_under_shards_stays_shard_local(self):
        eng = ShardedEngine(3)
        n = eng.POOL_MAX + 50
        for shard in (1, 2):
            with eng.shard_scope(shard):
                timers = [eng.pooled_timer(1.0) for _ in range(n)]
            for t in timers:
                t.cancel()
        eng.run(until=2.0)
        for shard in (1, 2):
            assert len(eng.shards[shard].timeout_pool) == eng.POOL_MAX
        assert not eng.shards[0].timeout_pool
        assert eng.queued == 0
        assert all(isinstance(t, object) and not isinstance(t, Deadline)
                   for t in eng.shards[1].timeout_pool)
