"""Smoke tests: the shipped examples run end to end.

Each example is executed in-process via runpy; assertions inside the
examples themselves serve as the checks.  The MD example is trimmed by
running only its fast validation entry points separately in the MP2C
tests, so only the quick examples run here.
"""

import pathlib
import runpy
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name, capsys):
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart.py", capsys)
        assert "result verified" in out
        assert "pool has 3 free" in out

    def test_dynamic_allocation(self, capsys):
        out = run_example("dynamic_allocation.py", capsys)
        assert "granted" in out
        assert "pool utilization" in out

    def test_fault_tolerance(self, capsys):
        out = run_example("fault_tolerance.py", capsys)
        assert "ARM assigned replacement" in out
        assert "100/100" in out
        assert "request deadlines hit: 1" in out

    @pytest.mark.slow
    def test_multi_gpu_qr(self, capsys):
        out = run_example("multi_gpu_qr.py", capsys)
        assert "verified" in out
        assert "paper: ~2.2x" in out
