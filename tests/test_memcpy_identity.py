"""Zero-copy data plane: A/B identity, copy accounting, COW isolation.

The tentpole property: running the exact same seeded memcpy-heavy
program with the zero-copy plane on and off must produce bit-identical
downloaded bytes, an identical virtual-time trace, *and* an identical
traced span timeline — the optimization buys host wall time and nothing
else.  On top of that, the copy counters prove the happy path really is
zero-copy (no payload copy on a contiguous H2D except the final device
write), and allocation-level copy-on-write keeps loaned download views
stable snapshots.
"""

import numpy as np
import pytest

from repro.buffers import copy_stats, zero_copy
from repro.core.protocol import reset_request_ids
from repro.mpisim import Phantom

from .harness import (
    expected_memcpy_results,
    generate_memcpy_program,
    make_remote_rig,
    run_memcpy,
    run_memcpy_traced,
)

MEMCPY_SEEDS = [0, 1, 2, 3, 4, 7, 42, 1234]


def _assert_outcomes_identical(on, off):
    assert len(on.results) == len(off.results)
    for i, (a, b) in enumerate(zip(on.results, off.results)):
        assert a == b, f"result[{i}] diverged between zero-copy on/off"
    assert on.trace == off.trace, "virtual-time trace diverged"


@pytest.mark.parametrize("seed", MEMCPY_SEEDS)
def test_zero_copy_ab_identity(seed):
    """Same program, zero-copy on vs off: bytes, trace, spans identical."""
    on, spans_on = run_memcpy_traced(seed, zero_copy=True)
    off, spans_off = run_memcpy_traced(seed, zero_copy=False)
    _assert_outcomes_identical(on, off)
    assert spans_on == spans_off, (
        "traced span timeline diverged between zero-copy on/off")
    on.assert_monotonic()


@pytest.mark.parametrize("seed", MEMCPY_SEEDS)
def test_memcpy_results_match_host_oracle(seed):
    """Downloaded bytes match the plain-host byte oracle, both modes."""
    program = generate_memcpy_program(seed)
    expected = expected_memcpy_results(program)
    assert any(not isinstance(r, tuple) for r in expected), (
        "seed produced no real downloads to compare")
    for mode in (True, False):
        reset_request_ids()
        with zero_copy(mode):
            cluster, sess, ac = make_remote_rig()
            out = sess.call(run_memcpy(cluster.engine, ac, program))
        assert out.results == expected, f"zero_copy={mode}: oracle mismatch"


def test_memcpy_program_is_pure_in_seed():
    a = generate_memcpy_program(17)
    b = generate_memcpy_program(17)
    assert len(a) == len(b)
    for ia, ib in zip(a, b):
        assert ia.op == ib.op
        for xa, xb in zip(ia.args, ib.args):
            if isinstance(xa, np.ndarray):
                # Byte-level: a random-byte float64 payload may hold NaNs.
                assert xa.tobytes() == xb.tobytes()
            elif isinstance(xa, Phantom):
                assert isinstance(xb, Phantom) and xa.nbytes == xb.nbytes
            else:
                assert xa == xb


def test_contiguous_h2d_pays_only_the_device_write():
    """Happy path: one contiguous array upload → zero payload copies.

    The single allowed copy is the final write into device backing
    memory; every intermediate hop (slice, send, receive, staging) must
    be a view hand-off.
    """
    payload = np.arange(256 * 1024, dtype=np.uint8)
    cluster, sess, ac = make_remote_rig()

    def prog():
        addr = yield from ac.mem_alloc(payload.nbytes)
        copy_stats.reset()
        yield from ac.memcpy_h2d(addr, payload)
        return addr

    sess.call(prog())
    assert copy_stats.payload_copies == 0, (
        f"contiguous H2D paid {copy_stats.payload_copies} avoidable "
        f"payload copies ({copy_stats.payload_bytes}B)")
    assert copy_stats.device_writes >= 1
    assert copy_stats.device_write_bytes == payload.nbytes


def test_d2h_download_is_a_loaned_view():
    """D2H of a full buffer stages and assembles without payload copies."""
    payload = np.arange(128 * 1024, dtype=np.uint8)
    cluster, sess, ac = make_remote_rig()

    def prog():
        addr = yield from ac.mem_alloc(payload.nbytes)
        yield from ac.memcpy_h2d(addr, payload)
        copy_stats.reset()
        out = yield from ac.memcpy_d2h(addr, payload.nbytes)
        return out

    out = sess.call(prog())
    assert copy_stats.payload_copies == 0, (
        f"D2H paid {copy_stats.payload_copies} avoidable payload copies")
    out = np.asarray(out)
    assert not out.flags.writeable, (
        "zero-copy download must hand back a read-only loan")
    assert (out.view(np.uint8).reshape(-1) == payload).all()


def test_downloaded_view_is_cow_isolated_from_later_writes():
    """A loaned download stays a stable snapshot across device mutation."""
    first = np.full(64 * 1024, 7, dtype=np.uint8)
    second = np.full(64 * 1024, 9, dtype=np.uint8)
    cluster, sess, ac = make_remote_rig()

    def prog():
        addr = yield from ac.mem_alloc(first.nbytes)
        yield from ac.memcpy_h2d(addr, first)
        snapshot = yield from ac.memcpy_d2h(addr, first.nbytes)
        yield from ac.memcpy_h2d(addr, second)
        after = yield from ac.memcpy_d2h(addr, second.nbytes)
        return snapshot, after

    copy_stats.reset()
    snapshot, after = sess.call(prog())
    snapshot = np.asarray(snapshot).view(np.uint8).reshape(-1)
    after = np.asarray(after).view(np.uint8).reshape(-1)
    assert (snapshot == 7).all(), (
        "COW failed: later device write leaked into the loaned snapshot")
    assert (after == 9).all()
    assert copy_stats.cow_copies >= 1, (
        "expected an allocation-level COW snapshot when the device "
        "buffer was overwritten under a live loan")


def test_chunkview_writable_is_a_private_copy():
    """ChunkView.writable() detaches from the shared backing buffer."""
    from repro.buffers import ChunkView

    backing = np.arange(1024, dtype=np.uint8)
    view = ChunkView(backing, offset=128, nbytes=256)
    private = view.writable()
    private[:] = 0
    assert backing[128] == 128, "writable() mutated the shared backing"
    assert (view.array == backing[128:384]).all()
    with pytest.raises(ValueError):
        view.array[0] = 1  # the read-only view rejects mutation
