"""Per-scenario signal assertions and scoring/gating unit tests.

Each catalog scenario must leave its characteristic fingerprint in the
pool-event timeline and the report counters — a scenario whose injection
silently stopped firing would otherwise still pass the determinism
check (a no-op replayed twice is identical to itself).
"""

import pytest

from repro.chaos import SCENARIOS, check_expectations
from repro.chaos.scenarios import ChaosConfig, Injection, run, score_pool_events
from repro.errors import WorkloadError

from ..harness import run_chaos_scenario


class TestScenarioSignals:
    def test_join_leave_waves_churns_membership(self):
        r = run_chaos_scenario(SCENARIOS["join_leave_waves"])
        assert r.joins >= 2
        kinds = [k for _, k, _ in r.pool_events]
        assert any(k.startswith("leave") for k in kinds)
        assert r.ttl_evictions >= 1          # the silent leaver ages out
        assert r.recoveries + r.completed > 0

    def test_rolling_upgrade_cycles_every_target(self):
        r = run_chaos_scenario(SCENARIOS["rolling_upgrade"])
        kinds = [k for _, k, _ in r.pool_events]
        assert kinds.count("leave:upgrade") == 3
        assert len(r.recovery_latencies_s) >= 3
        assert r.unrecovered == 0

    def test_partition_evicts_and_heals(self):
        r = run_chaos_scenario(SCENARIOS["partition"])
        assert r.ttl_evictions >= 1
        assert len(r.recovery_latencies_s) >= 1
        assert r.unrecovered == 0

    def test_straggler_ages_out_of_the_feed(self):
        # The slow period ends late in the window; a wider run gives the
        # straggler's first healthy report time to land and close the
        # recovery window before the last session drains.
        r = run_chaos_scenario(SCENARIOS["straggler"],
                               n_tenants=24, window_s=10e-3)
        assert r.ttl_evictions >= 1
        assert len(r.recovery_latencies_s) >= 1
        assert r.unrecovered == 0

    def test_slow_link_degrades_without_membership_churn(self):
        r = run_chaos_scenario(SCENARIOS["slow_link"])
        assert r.ttl_evictions == 0
        assert r.recovery_latencies_s == []
        assert r.unrecovered == 0
        assert r.completed > 0

    def test_heartbeat_flap_is_absorbed(self):
        r = run_chaos_scenario(SCENARIOS["heartbeat_flap"])
        assert r.ttl_evictions >= 1
        kinds = [k for _, k, _ in r.pool_events]
        assert "join" in kinds or "rejoin" in kinds
        assert r.unrecovered == 0

    def test_autoscale_burst_grows_the_pool(self):
        r = run_chaos_scenario(SCENARIOS["autoscale_burst"])
        assert r.scale_ups >= 1
        assert r.completed > 0
        assert r.unrecovered == 0

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_every_scenario_reports_obs_metrics(self, name):
        r = run_chaos_scenario(SCENARIOS[name])
        snapshot = r.registry.collect()
        assert "chaos.slo_violations" in snapshot
        assert "chaos.recovery_latency_s" in snapshot
        assert r.slo_violations == (r.late + r.failed + r.aborted + r.stuck)


class TestScoring:
    def test_down_then_up_yields_one_latency(self):
        events = [(1.0, "join", 0), (2.0, "join", 1),
                  (3.0, "break", 0), (4.5, "join", 2)]
        latencies, unrecovered = score_pool_events(events)
        assert latencies == [1.5]
        assert unrecovered == 0

    def test_unclosed_window_counts_as_unrecovered(self):
        events = [(1.0, "join", 0), (2.0, "join", 1), (3.0, "evict", 1)]
        latencies, unrecovered = score_pool_events(events)
        assert latencies == []
        assert unrecovered == 1

    def test_scale_down_is_not_a_failure(self):
        events = [(1.0, "join", 0), (2.0, "join", 1),
                  (3.0, "leave:scale-down", 1)]
        latencies, unrecovered = score_pool_events(events)
        assert latencies == []
        assert unrecovered == 0

    def test_nested_windows_close_lifo_by_capacity(self):
        events = [(0.0, "join", 0), (0.0, "join", 1), (0.0, "join", 2),
                  (1.0, "break", 0), (2.0, "evict", 1),
                  (3.0, "rejoin", 1), (5.0, "repair", 0)]
        latencies, unrecovered = score_pool_events(events)
        assert sorted(latencies) == [1.0, 4.0]
        assert unrecovered == 0


class TestGating:
    def test_check_expectations_flags_violations(self):
        r = run_chaos_scenario(SCENARIOS["slow_link"])
        problems = check_expectations(r, {
            "min_completed": r.completed + 1,
            "max_slo_violations": -1,
        })
        assert len(problems) == 2
        assert any("completed" in p and "violates bound" in p
                   for p in problems)
        assert any("slo_violations" in p for p in problems)

    def test_check_expectations_passes_on_met_bounds(self):
        r = run_chaos_scenario(SCENARIOS["slow_link"])
        assert check_expectations(r, {"min_completed": 1,
                                      "max_stuck": 0,
                                      "max_corrupted": 0}) == []


class TestValidation:
    def test_unknown_injection_kind_rejected(self):
        with pytest.raises(WorkloadError):
            Injection(kind="meteor", at_s=0.0, ac_id=0)

    def test_unknown_scenario_rejected(self):
        with pytest.raises(WorkloadError):
            run("no-such-scenario", ChaosConfig())

    def test_bad_config_rejected(self):
        with pytest.raises(WorkloadError):
            ChaosConfig(n_tenants=0)
        with pytest.raises(WorkloadError):
            ChaosConfig(initial_accelerators=9, n_accelerators=4)
