"""Seed-replay determinism for every chaos scenario.

The contract: running any scenario twice with the same
:class:`~repro.chaos.ChaosConfig` must produce bit-identical trace
digests, identical pool-event timelines, and byte-identical tenant
buffers.  Different seeds must (overwhelmingly) diverge — a digest that
ignores the seed would make the replay check vacuous.
"""

import pytest

from repro.chaos import SCENARIOS

from ..harness import (
    CHAOS_QUICK,
    assert_chaos_replay_identical,
    chaos_scenario_from_program,
    generate_chaos_program,
    run_chaos_scenario,
)


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_catalog_scenario_replays_identically(name):
    report = assert_chaos_replay_identical(SCENARIOS[name])
    assert report.submitted == (CHAOS_QUICK["n_tenants"]
                                * CHAOS_QUICK["requests_per_tenant"])
    assert report.stuck == 0
    assert report.corrupted == 0


@pytest.mark.parametrize("seed", [1, 7, 42])
def test_generated_program_replays_identically(seed):
    scenario = chaos_scenario_from_program(seed)
    report = assert_chaos_replay_identical(scenario, seed=seed)
    assert report.stuck == 0
    assert report.corrupted == 0


def test_different_seeds_diverge():
    a = run_chaos_scenario(SCENARIOS["join_leave_waves"], seed=0)
    b = run_chaos_scenario(SCENARIOS["join_leave_waves"], seed=1)
    assert a.digest != b.digest


def test_generated_programs_vary_with_seed():
    programs = {tuple(generate_chaos_program(s)) for s in range(4)}
    assert len(programs) == 4


def test_registry_metrics_match_report():
    report = run_chaos_scenario(SCENARIOS["partition"])
    reg = report.registry
    assert reg.value("chaos.slo_violations") == report.slo_violations
    assert reg.value("chaos.unrecovered") == report.unrecovered
    assert reg.value("chaos.pool_joins") == report.joins
    assert reg.value("chaos.ttl_evictions") == report.ttl_evictions
    (hist,) = reg.histograms("chaos.recovery_latency_s")
    assert hist.count == len(report.recovery_latencies_s)
