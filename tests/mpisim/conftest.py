"""Shared fixtures for mpisim tests: a small world on a simple fabric."""

import pytest

from repro.netsim import Fabric, LinkModel
from repro.mpisim import World
from repro.sim import Engine

# Round numbers for hand-computable timings; rendezvous above 1000 B.
MODEL = LinkModel(
    name="test-net",
    latency_s=0.001,
    bandwidth_Bps=1_000_000.0,
    injection_overhead_s=0.0001,
    rendezvous_threshold=1000,
)


@pytest.fixture
def eng():
    return Engine()


@pytest.fixture
def world(eng):
    fabric = Fabric(eng, MODEL)
    for i in range(8):
        fabric.add_endpoint(f"n{i}")
    return World(eng, fabric)


@pytest.fixture
def comm2(world):
    return world.create_comm(["n0", "n1"], name="pair")


@pytest.fixture
def comm4(world):
    return world.create_comm([f"n{i}" for i in range(4)], name="quad")
