"""Tests for MPI_Cancel-style receive cancellation (posted-recv leaks)."""

import pytest

from repro.errors import MPIError


def _posted_entries(comm, index):
    return comm._states[index].posted._entries


class TestCancelRecv:
    def test_cancel_pending_recv(self, eng, comm2):
        r1 = comm2.rank(1)
        req = r1.irecv(source=0, tag=7)
        assert len(_posted_entries(comm2, 1)) == 1
        assert r1.cancel_recv(req) is True
        assert req.cancelled
        assert not req.completed
        assert len(_posted_entries(comm2, 1)) == 0

    def test_cancel_after_completion_loses_race(self, eng, comm2):
        r0, r1 = comm2.rank(0), comm2.rank(1)
        req = r1.irecv(source=0, tag=7)
        r0.isend(1, 7, "hello")
        eng.run(until=req.done)
        assert req.completed
        assert r1.cancel_recv(req) is False
        assert not req.cancelled

    def test_cancel_twice_is_false(self, eng, comm2):
        r1 = comm2.rank(1)
        req = r1.irecv(source=0, tag=7)
        assert r1.cancel_recv(req) is True
        assert r1.cancel_recv(req) is False

    def test_late_message_is_discarded_not_queued(self, eng, comm2):
        # The message the cancelled receive was waiting for must not
        # accumulate in the unexpected queue (the leak the ARM heartbeat
        # hit on every missed PING round).
        r0, r1 = comm2.rank(0), comm2.rank(1)
        req = r1.irecv(source=0, tag=7)
        r1.cancel_recv(req)
        sreq = r0.isend(1, 7, "late reply")
        eng.run(until=sreq.done)
        eng.run()
        assert r1.iprobe(source=0, tag=7) is None

    def test_discard_is_one_shot(self, eng, comm2):
        # Only the first matching arrival is swallowed; the next message
        # on the same (source, tag) is delivered normally.
        r0, r1 = comm2.rank(0), comm2.rank(1)
        req = r1.irecv(source=0, tag=7)
        r1.cancel_recv(req)
        s1 = r0.isend(1, 7, "swallowed")
        eng.run(until=s1.done)
        eng.run()
        s2 = r0.isend(1, 7, "delivered")
        eng.run(until=s2.done)
        eng.run()
        env = r1.iprobe(source=0, tag=7)
        assert env is not None
        req2 = r1.irecv(source=0, tag=7)
        eng.run(until=req2.done)
        assert req2.message.payload == "delivered"

    def test_cancel_send_request_rejected(self, eng, comm2):
        r0 = comm2.rank(0)
        sreq = r0.isend(1, 7, "x")
        with pytest.raises(MPIError, match="cancel_recv"):
            r0.cancel_recv(sreq)

    def test_other_posted_recvs_untouched(self, eng, comm2):
        r1 = comm2.rank(1)
        keep = r1.irecv(source=0, tag=1)
        drop = r1.irecv(source=0, tag=2)
        r1.cancel_recv(drop)
        entries = _posted_entries(comm2, 1)
        assert len(entries) == 1
        r0 = comm2.rank(0)
        r0.isend(1, 1, "kept")
        eng.run(until=keep.done)
        assert keep.message.payload == "kept"
