"""Property-based tests for MPI semantics under randomized traffic."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.mpisim import ANY_SOURCE, ANY_TAG, Phantom
from repro.netsim import Fabric, LinkModel
from repro.mpisim import World
from repro.sim import Engine

MODEL = LinkModel("prop-net", latency_s=1e-4, bandwidth_Bps=1e6,
                  injection_overhead_s=1e-5, rendezvous_threshold=1000)


def build(n_ranks):
    eng = Engine()
    fabric = Fabric(eng, MODEL)
    eps = [fabric.add_endpoint(f"n{i}") for i in range(n_ranks)]
    world = World(eng, fabric)
    return eng, world.create_comm(eps)


class TestOrderingProperties:
    @given(st.lists(st.integers(0, 5000), min_size=1, max_size=30))
    @settings(max_examples=60, deadline=None)
    def test_mixed_size_messages_never_overtake(self, sizes):
        # Messages alternate eager/rendezvous depending on random sizes;
        # matching order must equal send order per (src, tag).
        eng, comm = build(2)
        r0, r1 = comm.rank(0), comm.rank(1)

        def sender():
            for i, n in enumerate(sizes):
                r0.isend(1, tag=1, payload=Phantom(n))
            if False:
                yield

        def receiver():
            out = []
            for _ in sizes:
                msg = yield from r1.recv(source=0, tag=1)
                out.append(msg.nbytes)
            return out

        eng.process(sender())
        p = eng.process(receiver())
        assert eng.run(until=p) == sizes

    @given(st.integers(2, 6), st.integers(0, 2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_wildcard_receives_drain_everything(self, n_ranks, seed):
        rng = np.random.default_rng(seed)
        eng, comm = build(n_ranks)
        counts = {src: int(rng.integers(1, 5)) for src in range(1, n_ranks)}
        total = sum(counts.values())

        def sender(src):
            r = comm.rank(src)
            for k in range(counts[src]):
                yield from r.send(0, tag=int(rng.integers(0, 3)),
                                  payload=(src, k))

        def receiver():
            got = []
            r = comm.rank(0)
            for _ in range(total):
                msg = yield from r.recv(source=ANY_SOURCE, tag=ANY_TAG)
                got.append(msg.payload)
            return got

        for src in counts:
            eng.process(sender(src))
        p = eng.process(receiver())
        got = eng.run(until=p)
        assert len(got) == total
        # Per-sender streams arrive in order even through wildcards.
        for src in counts:
            ks = [k for s, k in got if s == src]
            assert ks == sorted(ks)

    @given(st.integers(1, 30))
    @settings(max_examples=30, deadline=None)
    def test_request_completion_is_permanent(self, n):
        eng, comm = build(2)
        r0, r1 = comm.rank(0), comm.rank(1)
        reqs = [r1.irecv(source=0, tag=0) for _ in range(n)]

        def sender():
            for i in range(n):
                yield from r0.send(1, tag=0, payload=i)

        eng.process(sender())
        eng.run()
        assert all(r.completed for r in reqs)
        assert [r.message.payload for r in reqs] == list(range(n))


class TestCollectiveProperties:
    @given(st.integers(1, 6), st.integers(0, 2**31 - 1), st.integers(1, 32))
    @settings(max_examples=40, deadline=None)
    def test_allreduce_matches_numpy(self, p, seed, length):
        rng = np.random.default_rng(seed)
        values = rng.standard_normal((p, length))
        eng, comm = build(p)
        results = []

        def body(i):
            out = yield from comm.rank(i).allreduce(values[i].copy())
            results.append((i, out))

        procs = [eng.process(body(i)) for i in range(p)]
        eng.run(until=eng.all_of(procs))
        expected = values.sum(axis=0)
        assert len(results) == p
        for _, out in results:
            np.testing.assert_allclose(out, expected, atol=1e-10)

    @given(st.integers(1, 6), st.integers(0, 5))
    @settings(max_examples=40, deadline=None)
    def test_bcast_any_root(self, p, root_mod):
        eng, comm = build(p)
        root = root_mod % p
        out = []

        def body(i):
            v = yield from comm.rank(i).bcast(
                f"payload-{root}" if i == root else None, root=root)
            out.append(v)

        procs = [eng.process(body(i)) for i in range(p)]
        eng.run(until=eng.all_of(procs))
        assert out == [f"payload-{root}"] * p

    @given(st.integers(2, 6), st.integers(0, 2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_gather_scatter_inverse(self, p, seed):
        rng = np.random.default_rng(seed)
        parts = [float(rng.standard_normal()) for _ in range(p)]
        eng, comm = build(p)
        round_trip = []

        def body(i):
            rank = comm.rank(i)
            mine = yield from rank.scatter(parts if i == 0 else None, root=0)
            gathered = yield from rank.gather(mine, root=0)
            if i == 0:
                round_trip.extend(gathered)

        procs = [eng.process(body(i)) for i in range(p)]
        eng.run(until=eng.all_of(procs))
        assert round_trip == parts
