"""Tests for payload sizing and send-snapshot semantics."""

import numpy as np
import pytest

from repro.mpisim import Phantom, copy_for_send, payload_nbytes


class TestPayloadNbytes:
    def test_none_is_zero(self):
        assert payload_nbytes(None) == 0

    def test_ndarray(self):
        assert payload_nbytes(np.zeros((4, 5))) == 160
        assert payload_nbytes(np.zeros(3, dtype=np.float32)) == 12

    def test_bytes_like(self):
        assert payload_nbytes(b"abc") == 3
        assert payload_nbytes(bytearray(7)) == 7
        assert payload_nbytes(memoryview(b"12345")) == 5

    def test_phantom(self):
        assert payload_nbytes(Phantom(10**9)) == 10**9

    def test_pickled_objects(self):
        small = payload_nbytes(("ctl", 1))
        big = payload_nbytes(("ctl", list(range(1000))))
        assert 0 < small < big

    def test_phantom_validation(self):
        with pytest.raises(ValueError):
            Phantom(-1)

    def test_phantom_equality_and_hash(self):
        assert Phantom(5) == Phantom(5)
        assert Phantom(5) != Phantom(6)
        assert hash(Phantom(5)) == hash(Phantom(5))
        assert Phantom(5) != b"12345"


class TestCopyForSend:
    def test_ndarray_snapshot_independent(self):
        a = np.zeros(4)
        snap = copy_for_send(a)
        a[:] = 9
        np.testing.assert_array_equal(snap, np.zeros(4))

    def test_bytearray_frozen(self):
        b = bytearray(b"abc")
        snap = copy_for_send(b)
        b[0] = 0
        assert snap == b"abc"

    def test_memoryview_materialized(self):
        buf = bytearray(b"xyz")
        snap = copy_for_send(memoryview(buf))
        buf[0] = 0
        assert snap == b"xyz"

    def test_immutables_pass_through(self):
        p = Phantom(5)
        assert copy_for_send(p) is p
        s = "hello"
        assert copy_for_send(s) is s
