"""Tests for probe/iprobe and the waitall/waitany helpers."""

import pytest

from repro.errors import MPIError
from repro.mpisim import ANY_SOURCE, ANY_TAG


class TestIprobe:
    def test_nothing_pending(self, comm2):
        assert comm2.rank(1).iprobe() is None

    def test_sees_unexpected_without_consuming(self, eng, comm2):
        r0, r1 = comm2.rank(0), comm2.rank(1)

        def sender():
            yield from r0.send(1, tag=9, payload=b"xyz")

        eng.run(until=eng.process(sender()))
        eng.run()
        env = r1.iprobe()
        assert env is not None
        assert env.source == 0
        assert env.tag == 9
        assert env.nbytes == 3
        # Still receivable.
        def receiver():
            msg = yield from r1.recv()
            return msg.payload

        assert eng.run(until=eng.process(receiver())) == b"xyz"

    def test_tag_filter(self, eng, comm2):
        r0, r1 = comm2.rank(0), comm2.rank(1)

        def sender():
            yield from r0.send(1, tag=5, payload=None)

        eng.run(until=eng.process(sender()))
        eng.run()
        assert r1.iprobe(tag=6) is None
        assert r1.iprobe(tag=5) is not None


class TestBlockingProbe:
    def test_probe_waits_for_arrival(self, eng, comm2):
        r0, r1 = comm2.rank(0), comm2.rank(1)

        def prober():
            env = yield from r1.probe(source=0, tag=3)
            return (env.nbytes, eng.now)

        def sender():
            yield eng.timeout(2.0)
            yield from r0.send(1, tag=3, payload=b"abcd")

        p = eng.process(prober())
        eng.process(sender())
        nbytes, t = eng.run(until=p)
        assert nbytes == 4
        assert t > 2.0

    def test_probe_immediate_when_buffered(self, eng, comm2):
        r0, r1 = comm2.rank(0), comm2.rank(1)

        def sender():
            yield from r0.send(1, tag=1, payload=b"z")

        eng.run(until=eng.process(sender()))
        eng.run()

        def prober():
            env = yield from r1.probe()
            msg = yield from r1.recv(source=env.source, tag=env.tag)
            return msg.payload

        assert eng.run(until=eng.process(prober())) == b"z"

    def test_probe_then_sized_recv_pattern(self, eng, comm4):
        # The classic probe-for-size pattern with wildcard source.
        sink = comm4.rank(0)

        def sender(i):
            yield from comm4.rank(i).send(0, tag=7, payload=bytes(i * 10))

        for i in (1, 2, 3):
            eng.process(sender(i))

        def receiver():
            sizes = {}
            for _ in range(3):
                env = yield from sink.probe(tag=7)
                msg = yield from sink.recv(source=env.source, tag=7)
                sizes[env.source] = len(msg.payload)
            return sizes

        assert eng.run(until=eng.process(receiver())) == {1: 10, 2: 20, 3: 30}


class TestWaitHelpers:
    def test_waitall_returns_messages_in_order(self, eng, comm2):
        r0, r1 = comm2.rank(0), comm2.rank(1)

        def sender():
            for i in range(3):
                yield from r0.send(1, tag=i, payload=f"m{i}")

        def receiver():
            reqs = [r1.irecv(source=0, tag=i) for i in (2, 0, 1)]
            msgs = yield from r1.waitall(reqs)
            return [m.payload for m in msgs]

        eng.process(sender())
        p = eng.process(receiver())
        assert eng.run(until=p) == ["m2", "m0", "m1"]

    def test_waitall_empty(self, eng, comm2):
        def proc():
            out = yield from comm2.rank(0).waitall([])
            return out

        assert eng.run(until=eng.process(proc())) == []

    def test_waitany_returns_first(self, eng, comm2):
        r0, r1 = comm2.rank(0), comm2.rank(1)

        def sender():
            yield eng.timeout(1.0)
            yield from r0.send(1, tag=8, payload="late-but-only")

        def receiver():
            reqs = [r1.irecv(source=0, tag=7), r1.irecv(source=0, tag=8)]
            idx, msg = yield from r1.waitany(reqs)
            return idx, msg.payload

        eng.process(sender())
        p = eng.process(receiver())
        assert eng.run(until=p) == (1, "late-but-only")

    def test_waitany_empty_rejected(self, comm2):
        with pytest.raises(MPIError):
            next(iter(comm2.rank(0).waitany([])))
