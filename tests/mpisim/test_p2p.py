"""Point-to-point messaging tests: eager, rendezvous, matching, ordering."""

import numpy as np
import pytest

from repro.errors import MPIError
from repro.mpisim import ANY_SOURCE, ANY_TAG, Phantom


class TestBasicSendRecv:
    def test_eager_payload_delivered(self, eng, comm2):
        r0, r1 = comm2.rank(0), comm2.rank(1)

        def sender():
            yield from r0.send(1, tag=7, payload=b"hello")

        def receiver():
            msg = yield from r1.recv()
            return (msg.source, msg.tag, msg.payload)

        eng.process(sender())
        p = eng.process(receiver())
        assert eng.run(until=p) == (0, 7, b"hello")

    def test_rendezvous_payload_delivered(self, eng, comm2):
        r0, r1 = comm2.rank(0), comm2.rank(1)
        data = np.arange(1000, dtype=np.float64)  # 8000 B > threshold

        def sender():
            yield from r0.send(1, tag=1, payload=data)

        def receiver():
            msg = yield from r1.recv(source=0, tag=1)
            return msg

        eng.process(sender())
        p = eng.process(receiver())
        msg = eng.run(until=p)
        np.testing.assert_array_equal(msg.payload, data)
        assert msg.nbytes == 8000

    def test_numpy_payload_copied_on_send(self, eng, comm2):
        r0, r1 = comm2.rank(0), comm2.rank(1)
        data = np.zeros(10)

        def sender():
            req = r0.isend(1, tag=0, payload=data)
            data[:] = 99.0  # mutate after isend: receiver must not see this
            yield req.done

        def receiver():
            msg = yield from r1.recv()
            return msg.payload

        eng.process(sender())
        p = eng.process(receiver())
        np.testing.assert_array_equal(eng.run(until=p), np.zeros(10))

    def test_phantom_payload_times_but_carries_no_data(self, eng, comm2):
        r0, r1 = comm2.rank(0), comm2.rank(1)
        big = Phantom(64 * 1024 * 1024)

        def sender():
            yield from r0.send(1, tag=0, payload=big)

        def receiver():
            msg = yield from r1.recv()
            return msg

        eng.process(sender())
        p = eng.process(receiver())
        msg = eng.run(until=p)
        assert msg.payload == big
        assert msg.nbytes == 64 * 1024 * 1024
        assert eng.now > 60.0  # 64 MiB at 1 MB/s: over a minute of virtual time

    def test_none_payload_is_zero_bytes(self, eng, comm2):
        r0, r1 = comm2.rank(0), comm2.rank(1)

        def sender():
            yield from r0.send(1, tag=3, payload=None)

        def receiver():
            msg = yield from r1.recv()
            return msg

        eng.process(sender())
        p = eng.process(receiver())
        msg = eng.run(until=p)
        assert msg.payload is None
        assert msg.nbytes == 0

    def test_self_send(self, eng, comm2):
        r0 = comm2.rank(0)

        def proc():
            r0.isend(0, tag=5, payload=b"loop")
            msg = yield from r0.recv(source=0, tag=5)
            return msg.payload

        p = eng.process(proc())
        assert eng.run(until=p) == b"loop"


class TestMatching:
    def test_recv_by_specific_tag(self, eng, comm2):
        r0, r1 = comm2.rank(0), comm2.rank(1)

        def sender():
            yield from r0.send(1, tag=10, payload="ten")
            yield from r0.send(1, tag=20, payload="twenty")

        def receiver():
            m20 = yield from r1.recv(tag=20)
            m10 = yield from r1.recv(tag=10)
            return (m20.payload, m10.payload)

        eng.process(sender())
        p = eng.process(receiver())
        assert eng.run(until=p) == ("twenty", "ten")

    def test_recv_by_specific_source(self, eng, comm4):
        ranks = [comm4.rank(i) for i in range(4)]

        def sender(i):
            yield from ranks[i].send(0, tag=1, payload=f"from{i}")

        def receiver():
            m3 = yield from ranks[0].recv(source=3, tag=1)
            m1 = yield from ranks[0].recv(source=1, tag=1)
            m2 = yield from ranks[0].recv(source=2, tag=1)
            return (m3.payload, m1.payload, m2.payload)

        for i in (1, 2, 3):
            eng.process(sender(i))
        p = eng.process(receiver())
        assert eng.run(until=p) == ("from3", "from1", "from2")

    def test_wildcard_recv_gets_earliest(self, eng, comm2):
        r0, r1 = comm2.rank(0), comm2.rank(1)

        def sender():
            yield from r0.send(1, tag=5, payload="first")
            yield from r0.send(1, tag=6, payload="second")

        def receiver():
            yield from r1.recv(source=ANY_SOURCE, tag=ANY_TAG)  # drains "first"
            m = yield from r1.recv(source=ANY_SOURCE, tag=ANY_TAG)
            return m.payload

        eng.process(sender())
        p = eng.process(receiver())
        assert eng.run(until=p) == "second"

    def test_posted_recv_matched_by_later_arrival(self, eng, comm2):
        r0, r1 = comm2.rank(0), comm2.rank(1)

        def receiver():
            req = r1.irecv(source=0, tag=9)
            msg = yield req.done
            return (msg.payload, eng.now)

        def sender():
            yield eng.timeout(5.0)
            yield from r0.send(1, tag=9, payload="late")

        p = eng.process(receiver())
        eng.process(sender())
        payload, t = eng.run(until=p)
        assert payload == "late"
        assert t > 5.0

    def test_fifo_same_source_tag(self, eng, comm2):
        r0, r1 = comm2.rank(0), comm2.rank(1)

        def sender():
            for i in range(10):
                r0.isend(1, tag=1, payload=i)
            if False:
                yield

        def receiver():
            out = []
            for _ in range(10):
                msg = yield from r1.recv(source=0, tag=1)
                out.append(msg.payload)
            return out

        eng.process(sender())
        p = eng.process(receiver())
        assert eng.run(until=p) == list(range(10))

    def test_small_message_does_not_overtake_large(self, eng, comm2):
        # A large rendezvous message followed by a tiny eager one on the
        # same (src, tag): matching order must be send order.
        r0, r1 = comm2.rank(0), comm2.rank(1)
        big = np.full(100_000, 1.0)

        def sender():
            r0.isend(1, tag=2, payload=big)
            r0.isend(1, tag=2, payload=b"tiny")
            if False:
                yield

        def receiver():
            first = yield from r1.recv(source=0, tag=2)
            second = yield from r1.recv(source=0, tag=2)
            return (first.nbytes, second.payload)

        eng.process(sender())
        p = eng.process(receiver())
        nbytes, tiny = eng.run(until=p)
        assert nbytes == big.nbytes
        assert tiny == b"tiny"


class TestRequests:
    def test_isend_eager_completes_before_delivery(self, eng, comm2):
        r0, r1 = comm2.rank(0), comm2.rank(1)

        def sender():
            req = r0.isend(1, tag=0, payload=b"x" * 100)
            yield req.done
            return eng.now

        def receiver():
            msg = yield from r1.recv()
            return eng.now

        ps = eng.process(sender())
        pr = eng.process(receiver())
        t_send = eng.run(until=ps)
        eng.run(until=pr)
        t_recv = eng.now
        assert t_send < t_recv  # local completion at injection

    def test_rendezvous_send_blocks_until_receiver_posts(self, eng, comm2):
        r0, r1 = comm2.rank(0), comm2.rank(1)
        data = np.zeros(10_000)

        def sender():
            yield from r0.send(1, tag=0, payload=data)
            return eng.now

        def receiver():
            yield eng.timeout(10.0)  # post the receive late
            yield from r1.recv()

        ps = eng.process(sender())
        eng.process(receiver())
        t_send_done = eng.run(until=ps)
        assert t_send_done > 10.0  # sender stalled on the handshake

    def test_sendrecv_exchanges(self, eng, comm2):
        r0, r1 = comm2.rank(0), comm2.rank(1)

        def proc(rank, me):
            other = 1 - me
            msg = yield from rank.sendrecv(other, send_tag=1, payload=f"hi from {me}",
                                           source=other, recv_tag=1)
            return msg.payload

        p0 = eng.process(proc(r0, 0))
        p1 = eng.process(proc(r1, 1))
        assert eng.run(until=p0) == "hi from 1"
        assert eng.run(until=p1) == "hi from 0"

    def test_completed_flag(self, eng, comm2):
        r0, r1 = comm2.rank(0), comm2.rank(1)
        req = r1.irecv(source=0, tag=0)
        assert not req.completed

        def sender():
            yield from r0.send(1, tag=0, payload=b"z")

        eng.process(sender())
        eng.run()
        assert req.completed
        assert req.message.payload == b"z"


class TestValidation:
    def test_bad_rank_rejected(self, comm2):
        with pytest.raises(MPIError):
            comm2.rank(5)
        with pytest.raises(MPIError):
            comm2.isend(0, 9, tag=0)

    def test_negative_tag_rejected(self, comm2):
        with pytest.raises(MPIError):
            comm2.rank(0).isend(1, tag=-3)

    def test_empty_comm_rejected(self, world):
        with pytest.raises(MPIError):
            world.create_comm([])
