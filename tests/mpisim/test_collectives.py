"""Tests for the collective operations at several communicator sizes."""

import numpy as np
import pytest

from repro.errors import MPIError
from repro.mpisim import Phantom


def run_spmd(eng, comm, body):
    """Run ``body(rank_handle)`` as one process per rank; return results."""
    procs = [eng.process(body(comm.rank(i))) for i in range(comm.size)]
    results = []
    for p in procs:
        results.append(eng.run(until=p))
    return results


@pytest.fixture(params=[1, 2, 3, 4, 5, 8])
def comm_n(request, world):
    n = request.param
    return world.create_comm([f"n{i}" for i in range(n)], name=f"c{n}")


class TestBarrier:
    def test_barrier_synchronizes(self, eng, comm_n):
        release_times = {}

        def body(rank):
            # Stagger arrival, then barrier: all must leave >= the slowest.
            yield eng.timeout(float(rank.index))
            yield from rank.barrier()
            release_times[rank.index] = eng.now

        run_spmd(eng, comm_n, body)
        slowest_arrival = comm_n.size - 1.0
        assert all(t >= slowest_arrival for t in release_times.values())

    def test_repeated_barriers(self, eng, comm_n):
        def body(rank):
            for _ in range(3):
                yield from rank.barrier()
            return eng.now

        results = run_spmd(eng, comm_n, body)
        assert len(set(round(r, 12) for r in results)) <= 2  # all leave together-ish


class TestBcast:
    def test_bcast_from_root0(self, eng, comm_n):
        def body(rank):
            payload = "the news" if rank.index == 0 else None
            out = yield from rank.bcast(payload, root=0)
            return out

        assert run_spmd(eng, comm_n, body) == ["the news"] * comm_n.size

    def test_bcast_from_nonzero_root(self, eng, comm_n):
        root = comm_n.size - 1

        def body(rank):
            payload = 42 if rank.index == root else None
            out = yield from rank.bcast(payload, root=root)
            return out

        assert run_spmd(eng, comm_n, body) == [42] * comm_n.size

    def test_bcast_array(self, eng, comm_n):
        data = np.arange(50, dtype=np.float64)

        def body(rank):
            payload = data if rank.index == 0 else None
            out = yield from rank.bcast(payload, root=0)
            return out

        for out in run_spmd(eng, comm_n, body):
            np.testing.assert_array_equal(out, data)

    def test_bad_root_rejected(self, eng, comm_n):
        rank = comm_n.rank(0)
        with pytest.raises(MPIError):
            # Generator raises at first iteration.
            next(iter(rank.bcast("x", root=99)))


class TestReduce:
    def test_reduce_sum_to_root(self, eng, comm_n):
        def body(rank):
            out = yield from rank.reduce(np.array([float(rank.index + 1)]))
            return out

        results = run_spmd(eng, comm_n, body)
        expected = sum(range(1, comm_n.size + 1))
        assert results[0] == pytest.approx(expected)
        assert all(r is None for r in results[1:])

    def test_allreduce_sum_everywhere(self, eng, comm_n):
        def body(rank):
            out = yield from rank.allreduce(np.array([2.0 ** rank.index]))
            return float(out[0])

        results = run_spmd(eng, comm_n, body)
        expected = float(2 ** comm_n.size - 1)
        assert results == [pytest.approx(expected)] * comm_n.size

    def test_reduce_custom_op(self, eng, comm_n):
        def body(rank):
            out = yield from rank.reduce(np.array([float(rank.index)]), op=np.maximum)
            return out

        results = run_spmd(eng, comm_n, body)
        assert results[0] == pytest.approx(comm_n.size - 1)

    def test_reduce_phantom_propagates_size(self, eng, comm_n):
        def body(rank):
            out = yield from rank.reduce(Phantom(1024))
            return out

        results = run_spmd(eng, comm_n, body)
        assert isinstance(results[0], Phantom)
        assert results[0].nbytes == 1024


class TestGatherScatter:
    def test_gather(self, eng, comm_n):
        def body(rank):
            out = yield from rank.gather(rank.index * 10)
            return out

        results = run_spmd(eng, comm_n, body)
        assert results[0] == [i * 10 for i in range(comm_n.size)]
        assert all(r is None for r in results[1:])

    def test_scatter(self, eng, comm_n):
        values = [f"part{i}" for i in range(comm_n.size)]

        def body(rank):
            out = yield from rank.scatter(values if rank.index == 0 else None)
            return out

        assert run_spmd(eng, comm_n, body) == values

    def test_scatter_wrong_count_rejected(self, eng, world):
        comm = world.create_comm(["n0", "n1"])

        def body(rank):
            out = yield from rank.scatter(["only-one"] if rank.index == 0 else None)
            return out

        p0 = eng.process(body(comm.rank(0)))
        eng.process(body(comm.rank(1)))
        with pytest.raises(MPIError):
            eng.run(until=p0)

    def test_alltoall(self, eng, comm_n):
        def body(rank):
            values = [f"{rank.index}->{j}" for j in range(comm_n.size)]
            out = yield from rank.alltoall(values)
            return out

        results = run_spmd(eng, comm_n, body)
        for j, received in enumerate(results):
            assert received == [f"{i}->{j}" for i in range(comm_n.size)]

    def test_alltoall_wrong_count_rejected(self, eng, comm_n):
        rank = comm_n.rank(0)
        with pytest.raises(MPIError):
            next(iter(rank.alltoall([1] * (comm_n.size + 1))))


class TestCollectiveSequencing:
    def test_back_to_back_collectives_do_not_cross_match(self, eng, comm_n):
        # Two bcasts with different payloads: tag sequencing must keep them
        # apart even though all messages share the communicator.
        def body(rank):
            a = yield from rank.bcast("A" if rank.index == 0 else None, root=0)
            b = yield from rank.bcast("B" if rank.index == 0 else None, root=0)
            return (a, b)

        results = run_spmd(eng, comm_n, body)
        assert results == [("A", "B")] * comm_n.size

    def test_mixed_collectives_and_p2p(self, eng, world):
        comm = world.create_comm(["n0", "n1", "n2"])

        def body(rank):
            total = yield from rank.allreduce(np.array([1.0]))
            if rank.index == 0:
                yield from rank.send(1, tag=77, payload="direct")
                out = None
            elif rank.index == 1:
                msg = yield from rank.recv(source=0, tag=77)
                out = msg.payload
            else:
                out = None
            yield from rank.barrier()
            return (float(total[0]), out)

        results = run_spmd(eng, comm, body)
        assert results[0] == (3.0, None)
        assert results[1] == (3.0, "direct")
