"""Tests for hardware specs and cluster assembly."""

import pytest

from repro.cluster import (
    AcceleratorNodeSpec,
    Cluster,
    ClusterSpec,
    ComputeNodeSpec,
    CPUSpec,
    XEON_X5670_DUAL,
    paper_testbed,
)
from repro.errors import ClusterConfigError
from repro.gpusim import TESLA_C1060


class TestSpecs:
    def test_paper_testbed_defaults(self):
        spec = paper_testbed()
        assert spec.n_compute == 4
        assert spec.n_accelerators == 3
        assert spec.network.name == "ib-qdr-mpi"
        assert spec.accelerator.gpu is TESLA_C1060
        assert spec.compute.local_gpu is None

    def test_local_gpus_variant(self):
        spec = paper_testbed(local_gpus=True)
        assert spec.compute.local_gpu is TESLA_C1060

    def test_cpu_flops_time(self):
        t = XEON_X5670_DUAL.flops_time(11e9)
        assert t == pytest.approx(1.0)

    def test_cpu_validation(self):
        with pytest.raises(ClusterConfigError):
            CPUSpec("bad", 0, 1.0, 1, 1, 1, 0, 0)
        with pytest.raises(ClusterConfigError):
            CPUSpec("bad", 1, 1.0, 1, 1, 1, -1, 0)

    def test_cluster_spec_validation(self):
        with pytest.raises(ClusterConfigError):
            ClusterSpec(n_compute=0, n_accelerators=1)
        with pytest.raises(ClusterConfigError):
            ClusterSpec(n_compute=1, n_accelerators=-1)

    def test_node_spec_validation(self):
        with pytest.raises(ClusterConfigError):
            ComputeNodeSpec(ram_bytes=0)
        with pytest.raises(ClusterConfigError):
            AcceleratorNodeSpec(ram_bytes=-1)


class TestClusterAssembly:
    def test_ranks_and_endpoints(self):
        cluster = Cluster(paper_testbed(n_compute=2, n_accelerators=3))
        assert cluster.comm.size == 6  # 2 CN + 3 AC + ARM
        assert cluster.arm_rank_index == 5
        assert [n.rank.index for n in cluster.compute_nodes] == [0, 1]
        assert [n.rank.index for n in cluster.accelerator_nodes] == [2, 3, 4]
        assert len(cluster.daemons) == 3

    def test_local_gpu_created_only_when_asked(self):
        dyn = Cluster(paper_testbed(n_compute=1, n_accelerators=1))
        assert dyn.compute_nodes[0].local_gpu is None
        static = Cluster(paper_testbed(n_compute=1, n_accelerators=0,
                                       local_gpus=True))
        assert static.compute_nodes[0].local_gpu is not None

    def test_arm_registry_matches_accelerators(self):
        cluster = Cluster(paper_testbed(n_compute=1, n_accelerators=3))
        assert sorted(cluster.arm.records) == [0, 1, 2]
        assert cluster.arm.free_count() == 3

    def test_accelerator_for_handle(self):
        cluster = Cluster(paper_testbed(n_compute=1, n_accelerators=2))
        sess = cluster.session()
        handles = sess.call(cluster.arm_client(0).alloc(count=2))
        for h in handles:
            node = cluster.accelerator_for_handle(h)
            assert node.ac_id == h.ac_id

    def test_zero_accelerator_cluster(self):
        cluster = Cluster(paper_testbed(n_compute=2, n_accelerators=0))
        assert cluster.arm.free_count() == 0
        assert cluster.comm.size == 3
