"""Tests for the static/dynamic batch-scheduling model."""

import pytest

from repro.cluster.scheduler import (
    JobSpec,
    run_job_mix,
    _footprint_dynamic,
    _footprint_static,
)
from repro.errors import ClusterConfigError


def job(name, arrival, duration, gpus=0, nodes=1):
    return JobSpec(name=name, arrival_s=arrival, duration_s=duration,
                   n_nodes=nodes, n_gpus=gpus)


class TestFootprints:
    def test_static_cpu_job_parks_a_gpu(self):
        nodes, gpus = _footprint_static(job("a", 0, 10, gpus=0), 1)
        assert (nodes, gpus) == (1, 1)  # the node's GPU is captured idle

    def test_static_multi_gpu_job_spreads(self):
        nodes, gpus = _footprint_static(job("a", 0, 10, gpus=3), 1)
        assert (nodes, gpus) == (3, 3)  # premature hybridization

    def test_static_two_gpus_per_node(self):
        nodes, gpus = _footprint_static(job("a", 0, 10, gpus=3), 2)
        assert (nodes, gpus) == (2, 4)

    def test_dynamic_exact_footprint(self):
        nodes, gpus = _footprint_dynamic(job("a", 0, 10, gpus=3), 1)
        assert (nodes, gpus) == (1, 3)


class TestFifoScheduling:
    def test_sequential_when_full(self):
        jobs = [job("a", 0, 10, gpus=1), job("b", 0, 10, gpus=1)]
        res = run_job_mix(jobs, n_nodes=1, n_gpus=1, policy="dynamic")
        recs = {r.spec.name: r for r in res.records}
        # One node: b must wait for a.
        assert recs["b"].start_s == pytest.approx(10.0)
        assert res.makespan == pytest.approx(20.0)

    def test_parallel_when_capacity(self):
        jobs = [job("a", 0, 10, gpus=1), job("b", 0, 10, gpus=1)]
        res = run_job_mix(jobs, n_nodes=2, n_gpus=2, policy="dynamic")
        assert res.makespan == pytest.approx(10.0)
        assert res.mean_wait == pytest.approx(0.0)

    def test_fifo_is_strict(self):
        # Big job at the head blocks a small one even if it would fit.
        jobs = [job("big", 0, 10, gpus=2),
                job("bigger", 1, 10, gpus=2),
                job("small", 2, 1, gpus=0, nodes=1)]
        res = run_job_mix(jobs, n_nodes=3, n_gpus=2, policy="dynamic")
        recs = {r.spec.name: r for r in res.records}
        assert recs["bigger"].start_s == pytest.approx(10.0)
        assert recs["small"].start_s >= recs["bigger"].start_s

    def test_static_hybridization_penalty(self):
        # A 1-node 3-GPU job: static needs 3 nodes, so two such jobs
        # serialize on a 4-node cluster; dynamic runs them in parallel if
        # the pool has 6 GPUs.
        jobs = [job("a", 0, 100, gpus=3), job("b", 0, 100, gpus=3)]
        static = run_job_mix(jobs, n_nodes=4, n_gpus=6, policy="static",
                             gpus_per_node=1)
        dynamic = run_job_mix(jobs, n_nodes=4, n_gpus=6, policy="dynamic")
        assert static.makespan == pytest.approx(200.0)
        assert dynamic.makespan == pytest.approx(100.0)

    def test_impossible_job_raises(self):
        with pytest.raises(ClusterConfigError, match="needs"):
            run_job_mix([job("a", 0, 10, gpus=9)], n_nodes=2, n_gpus=2,
                        policy="dynamic")

    def test_cpu_only_mix_equivalent(self):
        jobs = [job(f"j{i}", i * 1.0, 10) for i in range(4)]
        static = run_job_mix(jobs, n_nodes=2, n_gpus=2, policy="static")
        dynamic = run_job_mix(jobs, n_nodes=2, n_gpus=2, policy="dynamic")
        assert static.makespan == pytest.approx(dynamic.makespan)

    def test_unknown_policy(self):
        with pytest.raises(ClusterConfigError, match="unknown policy"):
            run_job_mix([job("a", 0, 1)], 1, 1, policy="magic")

    def test_utilization_metrics(self):
        jobs = [job("a", 0, 10, gpus=2)]
        res = run_job_mix(jobs, n_nodes=1, n_gpus=2, policy="dynamic")
        assert res.gpu_utilization() == pytest.approx(1.0)
        assert res.node_utilization() == pytest.approx(1.0)

    def test_job_validation(self):
        with pytest.raises(ClusterConfigError):
            JobSpec("x", -1.0, 1.0)
        with pytest.raises(ClusterConfigError):
            JobSpec("x", 0.0, 0.0)
        with pytest.raises(ClusterConfigError):
            JobSpec("x", 0.0, 1.0, n_nodes=0)
