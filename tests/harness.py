"""Deterministic-simulation test harness.

Runs one randomly generated accelerator program — a seeded sequence of
alloc / upload / kernel / download / free instructions — through three
independent execution paths:

* the synchronous ``ac*`` API on a :class:`RemoteAccelerator`,
* the asynchronous :class:`~repro.core.stream.Stream` API (BATCH
  coalescing) on a :class:`RemoteAccelerator`,
* the node-attached :class:`~repro.baselines.local.LocalAccelerator`
  baseline (no network at all),

and returns, per path, the downloaded result arrays plus the virtual-time
event trace.  The three paths must produce **bit-identical** numerics
(they execute the same float ops in the same order), every trace must be
monotone in virtual time, and re-running the same seed must reproduce the
same trace bit for bit — the oracle future performance PRs are tested
against: an optimization may change *times*, never *values* or
determinism.
"""

from __future__ import annotations

import dataclasses
import typing as _t

import numpy as np

from repro.cluster import Cluster, paper_testbed

#: Element counts the generator draws from.  A small set keeps it likely
#: that two live buffers share a length, which daxpy needs.
SIZES = (16, 32, 64, 128)

#: Kernels a generated program may launch.
KERNELS = ("dscal", "daxpy", "fill")


@dataclasses.dataclass(frozen=True)
class Instr:
    """One abstract instruction; ``args`` depend on ``op``.

    ===========  ===========================================
    op           args
    ===========  ===========================================
    ``alloc``    (buf, n)        — n float64 elements
    ``h2d``      (buf, data)     — upload the given array
    ``dscal``    (buf, alpha)
    ``daxpy``    (src, dst, alpha) — dst += alpha * src
    ``fill``     (buf, value)
    ``d2h``      (buf,)          — download + record result
    ``free``     (buf,)
    ===========  ===========================================
    """

    op: str
    args: tuple


def generate_program(seed: int, n_ops: int = 40) -> list[Instr]:
    """A random but well-formed program (every touched buffer is live).

    The generator is pure in ``seed``: equal seeds give equal programs.
    Every program ends by downloading and freeing all live buffers, so
    each run yields at least one result to compare.
    """
    rng = np.random.default_rng(seed)
    prog: list[Instr] = []
    live: dict[int, int] = {}  # buf id -> length
    next_buf = 0

    def alloc():
        nonlocal next_buf
        buf, n = next_buf, int(rng.choice(SIZES))
        next_buf += 1
        live[buf] = n
        prog.append(Instr("alloc", (buf, n)))
        prog.append(Instr("h2d", (buf, rng.standard_normal(n))))
        return buf

    alloc()  # never start with an empty working set
    for _ in range(n_ops):
        choice = rng.random()
        if choice < 0.2 or not live:
            alloc()
        elif choice < 0.5:
            buf = int(rng.choice(sorted(live)))
            kind = rng.choice(KERNELS)
            if kind == "dscal":
                prog.append(Instr("dscal", (buf, float(rng.uniform(0.5, 2.0)))))
            elif kind == "fill":
                prog.append(Instr("fill", (buf, float(rng.normal()))))
            else:
                peers = [b for b, n in live.items() if n == live[buf] and b != buf]
                if peers:
                    src = int(rng.choice(sorted(peers)))
                    prog.append(Instr("daxpy",
                                      (src, buf, float(rng.uniform(-1, 1)))))
                else:
                    prog.append(Instr("dscal", (buf, float(rng.uniform(0.5, 2.0)))))
        elif choice < 0.7:
            buf = int(rng.choice(sorted(live)))
            prog.append(Instr("h2d", (buf, rng.standard_normal(live[buf]))))
        elif choice < 0.85:
            buf = int(rng.choice(sorted(live)))
            prog.append(Instr("d2h", (buf,)))
        elif len(live) > 1:
            buf = int(rng.choice(sorted(live)))
            prog.append(Instr("d2h", (buf,)))
            prog.append(Instr("free", (buf,)))
            del live[buf]
        else:
            alloc()
    for buf in sorted(live):
        prog.append(Instr("d2h", (buf,)))
        prog.append(Instr("free", (buf,)))
    return prog


def expected_results(program: list[Instr]) -> list[np.ndarray]:
    """Evaluate the program on plain host arrays (the numeric oracle)."""
    bufs: dict[int, np.ndarray] = {}
    results: list[np.ndarray] = []
    for ins in program:
        if ins.op == "alloc":
            buf, n = ins.args
            bufs[buf] = np.zeros(n)
        elif ins.op == "h2d":
            buf, data = ins.args
            bufs[buf] = data.copy()
        elif ins.op == "dscal":
            buf, alpha = ins.args
            bufs[buf] *= alpha
        elif ins.op == "daxpy":
            src, dst, alpha = ins.args
            bufs[dst] += alpha * bufs[src]
        elif ins.op == "fill":
            buf, value = ins.args
            bufs[buf][:] = value
        elif ins.op == "d2h":
            results.append(bufs[ins.args[0]].copy())
        elif ins.op == "free":
            del bufs[ins.args[0]]
    return results


def _kernel_params(ins: Instr, addr: _t.Callable[[int], _t.Any],
                   lengths: dict[int, int]) -> tuple[str, dict]:
    """Wire name + params for a kernel instruction.

    ``addr`` maps a buffer id to its device address — or to its alloc
    *future* in the stream path, exercising nested future resolution.
    """
    if ins.op == "dscal":
        buf, alpha = ins.args
        return "dscal", {"x": addr(buf), "n": lengths[buf], "alpha": alpha}
    if ins.op == "daxpy":
        src, dst, alpha = ins.args
        return "daxpy", {"x": addr(src), "y": addr(dst),
                         "n": lengths[dst], "alpha": alpha}
    buf, value = ins.args
    return "fill", {"dst": addr(buf), "n": lengths[buf], "value": value}


@dataclasses.dataclass
class RunOutcome:
    """What one execution path produced."""

    results: list[np.ndarray]
    trace: list[tuple[float, str]]

    def assert_monotonic(self) -> None:
        times = [t for t, _ in self.trace]
        assert times == sorted(times), "virtual-time trace went backwards"
        assert all(t >= 0 for t in times)


def run_sync(engine, ac, program: list[Instr]):
    """Drive the program through the synchronous ``ac*`` API (generator)."""
    addrs: dict[int, int] = {}
    lengths: dict[int, int] = {}
    results: list[np.ndarray] = []
    trace: list[tuple[float, str]] = []
    for name in KERNELS:
        yield from ac.kernel_create(name)
    for ins in program:
        if ins.op == "alloc":
            buf, n = ins.args
            lengths[buf] = n
            addrs[buf] = yield from ac.mem_alloc(n * 8)
        elif ins.op == "h2d":
            buf, data = ins.args
            yield from ac.memcpy_h2d(addrs[buf], data)
        elif ins.op in ("dscal", "daxpy", "fill"):
            name, params = _kernel_params(ins, addrs.__getitem__, lengths)
            yield from ac.kernel_run(name, params)
        elif ins.op == "d2h":
            buf = ins.args[0]
            out = yield from ac.memcpy_d2h(addrs[buf], lengths[buf] * 8)
            results.append(np.asarray(out, dtype=np.float64).copy())
        elif ins.op == "free":
            yield from ac.mem_free(addrs.pop(ins.args[0]))
        trace.append((engine.now, ins.op))
    return RunOutcome(results, trace)


def run_stream(engine, ac, program: list[Instr], sync_every: int = 0):
    """Drive the program through one command stream (generator).

    Buffer addresses stay *futures* throughout — kernel parameters and
    copy targets reference them unresolved, and the stream pump resolves
    them in order.  ``sync_every > 0`` inserts periodic synchronization
    barriers, exercising pump restarts.
    """
    stream = ac.stream()
    addrs: dict[int, _t.Any] = {}
    lengths: dict[int, int] = {}
    futures: list = []
    trace: list[tuple[float, str]] = []
    for name in KERNELS:
        stream.kernel_create(name)
    for i, ins in enumerate(program):
        if ins.op == "alloc":
            buf, n = ins.args
            lengths[buf] = n
            addrs[buf] = stream.mem_alloc(n * 8)
        elif ins.op == "h2d":
            buf, data = ins.args
            stream.memcpy_h2d(addrs[buf], data)
        elif ins.op in ("dscal", "daxpy", "fill"):
            name, params = _kernel_params(ins, addrs.__getitem__, lengths)
            stream.kernel_run(name, params)
        elif ins.op == "d2h":
            buf = ins.args[0]
            futures.append(stream.memcpy_d2h(addrs[buf], lengths[buf] * 8))
        elif ins.op == "free":
            stream.mem_free(addrs.pop(ins.args[0]))
        if sync_every and (i + 1) % sync_every == 0:
            yield from stream.synchronize()
            trace.append((engine.now, f"sync@{i + 1}"))
    yield from stream.synchronize()
    trace.append((engine.now, "sync"))
    results = [np.asarray(f.result(), dtype=np.float64).copy()
               for f in futures]
    return RunOutcome(results, trace), stream


def make_remote_rig(shards: int | None = None):
    """A fresh 1-CN/1-AC cluster with a RemoteAccelerator front-end."""
    cluster = Cluster(paper_testbed(n_compute=1, n_accelerators=1),
                      shards=shards)
    sess = cluster.session()
    handles = sess.call(cluster.arm_client(0).alloc(count=1))
    return cluster, sess, cluster.remote(0, handles[0])


def make_local_rig():
    """A fresh engine with a node-attached LocalAccelerator."""
    from repro.baselines import LocalAccelerator
    cluster = Cluster(paper_testbed(n_compute=1, n_accelerators=0,
                                    local_gpus=True))
    node = cluster.compute_nodes[0]
    local = LocalAccelerator(cluster.engine, node.local_gpu, node.cpu)
    return cluster, cluster.session(), local


def run_all_paths(seed: int, n_ops: int = 40):
    """Execute one seeded program on all three paths.

    Returns ``(expected, outcomes)`` where ``outcomes`` maps path name to
    :class:`RunOutcome` (the stream path also reports its stream for
    round-trip accounting).
    """
    program = generate_program(seed, n_ops)
    expected = expected_results(program)
    outcomes: dict[str, RunOutcome] = {}

    cluster, sess, ac = make_remote_rig()
    outcomes["sync"] = sess.call(run_sync(cluster.engine, ac, program))

    cluster_s, sess_s, ac_s = make_remote_rig()

    def stream_prog():
        out, stream = yield from run_stream(cluster_s.engine, ac_s, program)
        return out, stream

    outcomes["stream"], stream = sess_s.call(stream_prog())

    cluster_l, sess_l, ac_l = make_local_rig()
    outcomes["local"] = sess_l.call(run_sync(cluster_l.engine, ac_l, program))

    return expected, outcomes, stream


def assert_equivalent(expected: list[np.ndarray],
                      outcomes: dict[str, RunOutcome]) -> None:
    """All paths bit-identical to each other and to the host oracle."""
    for name, out in outcomes.items():
        assert len(out.results) == len(expected), (
            f"{name}: {len(out.results)} results, expected {len(expected)}")
        for i, (got, want) in enumerate(zip(out.results, expected)):
            assert got.shape == want.shape, f"{name}[{i}]: shape mismatch"
            assert (got == want).all(), (
                f"{name}[{i}]: numerics diverged "
                f"(max |delta| = {np.abs(got - want).max()})")
        out.assert_monotonic()


# ---------------------------------------------------------------------------
# Memcpy-heavy programs: the zero-copy data plane's A/B identity oracle.
#
# These programs exercise only the copy path — no kernels — but with every
# payload shape the plane must handle: real arrays (uint8 and float64),
# raw ``bytes``, timing-only Phantoms, offset windows, and pinned/pageable
# variation.  The same seeded program is run twice, zero-copy on and off,
# and both the downloaded bytes *and* the traced span timeline must be
# bit-identical: the optimization may only change host wall time.
# ---------------------------------------------------------------------------

#: Buffer byte sizes for memcpy programs.  Deliberately spans sub-block
#: (one chunk) and multi-block pipeline transfers, plus one size that is
#: not a multiple of the pipeline block so the tail block is short.
MEMCPY_SIZES = (512, 4096, 24_576, 65_536, 200_000)


def generate_memcpy_program(seed: int, n_ops: int = 24) -> list[Instr]:
    """A random but well-formed copy-only program (pure in ``seed``).

    ===============  ====================================================
    op               args
    ===============  ====================================================
    ``alloc_raw``    (buf, nbytes, real) — phantom buffer when not real
    ``h2d_raw``      (buf, payload, offset, pinned)
    ``d2h_raw``      (buf, offset, nbytes, pinned)
    ``free_raw``     (buf,)
    ===============  ====================================================
    """
    from repro.mpisim import Phantom

    rng = np.random.default_rng(seed)
    prog: list[Instr] = []
    live: dict[int, tuple[int, bool]] = {}  # buf -> (nbytes, real)
    next_buf = 0

    def payload_for(nbytes: int, real: bool) -> _t.Any:
        if not real:
            return Phantom(nbytes)
        raw = rng.integers(0, 256, size=nbytes, dtype=np.uint8)
        kind = int(rng.integers(3))
        if kind == 0:
            return raw
        if kind == 1 and nbytes % 8 == 0:
            return raw.view(np.float64)
        return raw.tobytes()

    def pinned() -> bool | None:
        return [None, True, False][int(rng.integers(3))]

    def alloc() -> int:
        nonlocal next_buf
        buf = next_buf
        next_buf += 1
        nbytes = int(rng.choice(MEMCPY_SIZES))
        real = bool(rng.random() < 0.7)
        live[buf] = (nbytes, real)
        prog.append(Instr("alloc_raw", (buf, nbytes, real)))
        # Fully populate right away so offset reads are always defined.
        prog.append(Instr("h2d_raw",
                          (buf, payload_for(nbytes, real), 0, pinned())))
        return buf

    def window(nbytes: int) -> tuple[int, int]:
        """A random non-empty (offset, length) window within ``nbytes``."""
        if nbytes <= 1 or rng.random() < 0.5:
            return 0, nbytes
        offset = int(rng.integers(0, nbytes - 1))
        length = int(rng.integers(1, nbytes - offset + 1))
        return offset, length

    alloc()
    for _ in range(n_ops):
        choice = rng.random()
        if choice < 0.2 or not live:
            alloc()
        elif choice < 0.55:
            buf = int(rng.choice(sorted(live)))
            nbytes, real = live[buf]
            offset, length = window(nbytes)
            prog.append(Instr("h2d_raw",
                              (buf, payload_for(length, real), offset,
                               pinned())))
        elif choice < 0.85:
            buf = int(rng.choice(sorted(live)))
            nbytes, _real = live[buf]
            offset, length = window(nbytes)
            prog.append(Instr("d2h_raw", (buf, offset, length, pinned())))
        elif len(live) > 1:
            buf = int(rng.choice(sorted(live)))
            nbytes, _real = live[buf]
            prog.append(Instr("d2h_raw", (buf, 0, nbytes, pinned())))
            prog.append(Instr("free_raw", (buf,)))
            del live[buf]
        else:
            alloc()
    for buf in sorted(live):
        nbytes, _real = live[buf]
        prog.append(Instr("d2h_raw", (buf, 0, nbytes, pinned())))
        prog.append(Instr("free_raw", (buf,)))
    return prog


def _payload_bytes(payload: _t.Any) -> bytes:
    if isinstance(payload, np.ndarray):
        return payload.tobytes()
    return bytes(payload)


def expected_memcpy_results(program: list[Instr]) -> list:
    """Byte-level host oracle: each d2h yields ``bytes`` or a phantom tag."""
    from repro.mpisim import Phantom

    bufs: dict[int, bytearray | None] = {}
    results: list = []
    for ins in program:
        if ins.op == "alloc_raw":
            buf, nbytes, real = ins.args
            bufs[buf] = bytearray(nbytes) if real else None
        elif ins.op == "h2d_raw":
            buf, payload, offset, _pinned = ins.args
            if not isinstance(payload, Phantom):
                data = _payload_bytes(payload)
                bufs[buf][offset:offset + len(data)] = data
        elif ins.op == "d2h_raw":
            buf, offset, nbytes, _pinned = ins.args
            backing = bufs[buf]
            if backing is None:
                results.append(("phantom", nbytes))
            else:
                results.append(bytes(backing[offset:offset + nbytes]))
        elif ins.op == "free_raw":
            del bufs[ins.args[0]]
    return results


def run_memcpy(engine, ac, program: list[Instr]):
    """Drive a memcpy program through the sync API (generator).

    Results are normalized to ``bytes`` (or ``("phantom", n)`` tags) so
    outcomes compare bit-for-bit regardless of the dtype the download
    path reconstructed.
    """
    from repro.mpisim import Phantom

    addrs: dict[int, int] = {}
    results: list = []
    trace: list[tuple[float, str]] = []
    for ins in program:
        if ins.op == "alloc_raw":
            buf, nbytes, _real = ins.args
            addrs[buf] = yield from ac.mem_alloc(nbytes)
        elif ins.op == "h2d_raw":
            buf, payload, offset, pinned = ins.args
            yield from ac.memcpy_h2d(addrs[buf], payload, offset=offset,
                                     pinned=pinned)
        elif ins.op == "d2h_raw":
            buf, offset, nbytes, pinned = ins.args
            out = yield from ac.memcpy_d2h(addrs[buf], nbytes, offset=offset,
                                           pinned=pinned)
            if isinstance(out, Phantom):
                results.append(("phantom", out.nbytes))
            else:
                results.append(np.asarray(out).tobytes())
        elif ins.op == "free_raw":
            yield from ac.mem_free(addrs.pop(ins.args[0]))
        trace.append((engine.now, ins.op))
    return RunOutcome(results, trace)


def span_timeline(session) -> list[tuple]:
    """The traced span timeline as comparable (name, phase, ts, dur) rows."""
    events = session.to_chrome_trace()["traceEvents"]
    return [(ev.get("name"), ev.get("ph"), ev.get("ts"), ev.get("dur"))
            for ev in events]


def run_memcpy_traced(seed: int, n_ops: int = 24, zero_copy: bool = True,
                      shards: int | None = None):
    """One traced memcpy run under the given zero-copy mode.

    Returns ``(outcome, timeline)``.  The rig is built inside the trace
    session so every engine's spans are captured.
    """
    from repro.buffers import zero_copy as zero_copy_ctx
    from repro.core.protocol import reset_request_ids
    from repro.obs import trace_session

    program = generate_memcpy_program(seed, n_ops)
    # Pickled control frames grow with the request id's magnitude, so
    # absolute times only line up when both runs draw the same ids.
    reset_request_ids()
    with zero_copy_ctx(zero_copy):
        with trace_session() as session:
            cluster, sess, ac = make_remote_rig(shards=shards)
            outcome = sess.call(run_memcpy(cluster.engine, ac, program))
    return outcome, span_timeline(session)


# ---------------------------------------------------------------------------
# Chaos op programs: seeded injection sequences over the discovered pool.
#
# The chaos analog of generate_program(): a random but well-formed sequence
# of membership/fault injections (joins, leaves, flaps, stragglers,
# partitions, slow links, upgrades), pure in the seed, composed into an
# ad-hoc Scenario and run under offered tenant load.  The determinism
# oracle: the same seed replayed twice must produce a bit-identical trace
# digest, membership log, and per-session payload digests — real payloads
# survive failover replay byte-for-byte no matter what the program did to
# the pool underneath.
# ---------------------------------------------------------------------------

#: Small-but-churny run shape for harness/CI chaos replays.
CHAOS_QUICK = dict(n_tenants=16, requests_per_tenant=2, window_s=8e-3,
                   real_payload_every=2)


def generate_chaos_program(seed: int, n_injections: int = 6,
                           n_accelerators: int = 6, initial: int = 4,
                           window_s: float = 8e-3):
    """A random, well-formed chaos injection program (pure in ``seed``).

    Injections land at increasing times inside the arrival window and
    respect membership: joins target dormant nodes, everything else
    targets active ones (leaves and upgrades track the active set, so a
    later join can resurrect a leaver).
    """
    import random as _random

    from repro.chaos import Injection

    rng = _random.Random(seed)
    active = set(range(initial))
    dormant = set(range(initial, n_accelerators))
    program: list = []
    times = sorted(rng.uniform(0.1 * window_s, 0.8 * window_s)
                   for _ in range(n_injections))
    for at in times:
        kinds = ["slow", "flap", "partition", "slow-link", "upgrade"]
        if dormant:
            kinds.append("join")
        if len(active) > 1:
            kinds.append("leave")
        kind = rng.choice(kinds)
        span = rng.uniform(0.1 * window_s, 0.3 * window_s)
        if kind == "join":
            ac = rng.choice(sorted(dormant))
            dormant.discard(ac)
            active.add(ac)
            program.append(Injection("join", at, ac_id=ac))
        elif kind == "leave":
            ac = rng.choice(sorted(active))
            active.discard(ac)
            dormant.add(ac)
            program.append(Injection(
                "leave", at, ac_id=ac,
                reason=rng.choice(["departed", None])))
        elif kind == "flap":
            ac = rng.choice(sorted(active))
            program.append(Injection("flap", at, ac_id=ac,
                                     until_s=at + span,
                                     half_period_s=span / 3.0))
        elif kind == "slow":
            ac = rng.choice(sorted(active))
            program.append(Injection("slow", at, ac_id=ac,
                                     factor=rng.uniform(5.0, 25.0),
                                     until_s=at + span))
        elif kind == "partition":
            ac = rng.choice(sorted(active))
            program.append(Injection("partition", at, ac_id=ac,
                                     until_s=at + span))
        elif kind == "slow-link":
            ac = rng.choice(sorted(active))
            program.append(Injection("slow-link", at, ac_id=ac,
                                     extra_s=rng.uniform(1e-4, 4e-4),
                                     until_s=at + span))
        else:  # upgrade
            ac = rng.choice(sorted(active))
            program.append(Injection("upgrade", at, ac_id=ac,
                                     version=f"v{rng.randint(2, 9)}"))
    return program


def chaos_scenario_from_program(seed: int, **kwargs):
    """Wrap a generated injection program as an ad-hoc Scenario."""
    from repro.chaos import Scenario

    program = generate_chaos_program(seed, **kwargs)
    return Scenario(
        name=f"generated-{seed}",
        description=f"seeded chaos op program (seed {seed})",
        recovery_path="whatever the generated injections require",
        injections=lambda cfg: program)


def run_chaos_scenario(scenario, seed: int = 0, **overrides):
    """One harness-shaped chaos run (small population, real payloads)."""
    from repro.chaos import ChaosConfig, run as _run_chaos

    cfg = ChaosConfig(seed=seed, **{**CHAOS_QUICK, **overrides})
    return _run_chaos(scenario, cfg)


def assert_chaos_replay_identical(scenario, seed: int = 0, **overrides):
    """The chaos determinism oracle: same seed, bit-identical everything.

    Runs the scenario twice and asserts the trace digests, the ARM's
    membership logs, and every verified session's returned payload bytes
    (their sha256 digests) match exactly.  Returns the first report for
    further scenario-specific assertions.
    """
    first = run_chaos_scenario(scenario, seed, **overrides)
    second = run_chaos_scenario(scenario, seed, **overrides)
    assert first.digest == second.digest, (
        f"{first.scenario}: same seed produced different trace digests")
    assert first.pool_events == second.pool_events, (
        f"{first.scenario}: membership logs diverged between replays")
    assert first.buffer_digests == second.buffer_digests, (
        f"{first.scenario}: downloaded payload bytes diverged — replay "
        f"is not bit-identical")
    assert first.corrupted == 0, (
        f"{first.scenario}: {first.corrupted} verified payload(s) came "
        f"back corrupted")
    counts = ("submitted", "completed", "rejected", "aborted", "failed",
              "stuck", "recoveries", "slo_violations")
    for field in counts:
        assert getattr(first, field) == getattr(second, field), (
            f"{first.scenario}: {field} diverged between replays")
    return first


# ---------------------------------------------------------------------------
# Peer-transfer programs: the P2P data plane's A/B identity oracle.
#
# A seeded sequence of uploads and whole-buffer device→device transfers,
# run twice — once over the direct daemon→daemon ``peer_put`` path and
# once over the staged two-hop path through the compute node.  Both must
# produce bit-identical downloaded bytes (and match a plain byte-level
# host oracle); the P2P plane may only change *times*, never values.
# ---------------------------------------------------------------------------

#: Buffer byte sizes for peer programs: sub-block and multi-block
#: pipeline transfers (peer forwarding reuses the H2D pipeline).
PEER_SIZES = (512, 4096, 24_576, 65_536)


def generate_peer_program(seed: int, n_ops: int = 16,
                          n_devices: int = 3) -> list[Instr]:
    """A random, well-formed peer-transfer program (pure in ``seed``).

    ==============  ====================================================
    op              args
    ==============  ====================================================
    ``alloc_peer``  (dev, buf, nbytes)
    ``h2d_peer``    (dev, buf, payload)
    ``put``         (src_dev, src_buf, dst_dev, dst_buf, nbytes)
    ``d2h_peer``    (dev, buf, nbytes)
    ==============  ====================================================

    Transfers move whole buffers between equal-size allocations (the
    daemon's ``PEER_PUT`` path copies allocations from offset 0), and
    every buffer is uploaded before it can be a transfer source, so the
    byte oracle is always defined.
    """
    rng = np.random.default_rng(seed)
    prog: list[Instr] = []
    #: (dev, buf) -> nbytes, for buffers with defined contents.
    live: dict[tuple[int, int], int] = {}
    next_buf = 0

    def alloc() -> tuple[int, int]:
        nonlocal next_buf
        dev = int(rng.integers(n_devices))
        buf = next_buf
        next_buf += 1
        nbytes = int(rng.choice(PEER_SIZES))
        prog.append(Instr("alloc_peer", (dev, buf, nbytes)))
        payload = rng.integers(0, 256, size=nbytes, dtype=np.uint8)
        prog.append(Instr("h2d_peer", (dev, buf, payload)))
        live[(dev, buf)] = nbytes
        return dev, buf

    alloc()
    alloc()
    for _ in range(n_ops):
        choice = rng.random()
        if choice < 0.25:
            alloc()
        elif choice < 0.75:
            src = sorted(live)[int(rng.integers(len(live)))]
            peers = [k for k, n in live.items()
                     if n == live[src] and k != src and k[0] != src[0]]
            if peers:
                dst = peers[int(rng.integers(len(peers)))]
            else:  # no equal-size peer elsewhere: make one
                dev = int((src[0] + 1 + rng.integers(n_devices - 1))
                          % n_devices)
                buf = next_buf
                next_buf += 1
                prog.append(Instr("alloc_peer", (dev, buf, live[src])))
                live[(dev, buf)] = live[src]
                dst = (dev, buf)
            prog.append(Instr("put", (src[0], src[1], dst[0], dst[1],
                                      live[src])))
        else:
            dev, buf = sorted(live)[int(rng.integers(len(live)))]
            prog.append(Instr("d2h_peer", (dev, buf, live[(dev, buf)])))
    for dev, buf in sorted(live):
        prog.append(Instr("d2h_peer", (dev, buf, live[(dev, buf)])))
    return prog


def expected_peer_results(program: list[Instr]) -> list[bytes]:
    """Byte-level host oracle for a peer program."""
    bufs: dict[tuple[int, int], bytearray] = {}
    results: list[bytes] = []
    for ins in program:
        if ins.op == "alloc_peer":
            dev, buf, nbytes = ins.args
            bufs[(dev, buf)] = bytearray(nbytes)
        elif ins.op == "h2d_peer":
            dev, buf, payload = ins.args
            bufs[(dev, buf)][:] = _payload_bytes(payload)
        elif ins.op == "put":
            sd, sb, dd, db, nbytes = ins.args
            bufs[(dd, db)][:nbytes] = bufs[(sd, sb)][:nbytes]
        elif ins.op == "d2h_peer":
            dev, buf, nbytes = ins.args
            results.append(bytes(bufs[(dev, buf)][:nbytes]))
    return results


def run_peer_program(engine, acs, program: list[Instr], mode: str):
    """Drive a peer program over the chosen transport (generator).

    ``mode="p2p"`` transfers via :meth:`peer_put`; ``mode="staged"``
    stages every transfer through the host (D2H then H2D) — the oracle
    path the P2P plane must match bit for bit.
    """
    addrs: dict[tuple[int, int], int] = {}
    results: list[bytes] = []
    trace: list[tuple[float, str]] = []
    for ins in program:
        if ins.op == "alloc_peer":
            dev, buf, nbytes = ins.args
            addrs[(dev, buf)] = yield from acs[dev].mem_alloc(nbytes)
        elif ins.op == "h2d_peer":
            dev, buf, payload = ins.args
            yield from acs[dev].memcpy_h2d(addrs[(dev, buf)], payload)
        elif ins.op == "put":
            sd, sb, dd, db, nbytes = ins.args
            if mode == "p2p":
                yield from acs[sd].peer_put(addrs[(sd, sb)], nbytes,
                                            acs[dd], addrs[(dd, db)])
            else:
                data = yield from acs[sd].memcpy_d2h(addrs[(sd, sb)], nbytes)
                yield from acs[dd].memcpy_h2d(addrs[(dd, db)], data)
        elif ins.op == "d2h_peer":
            dev, buf, nbytes = ins.args
            out = yield from acs[dev].memcpy_d2h(addrs[(dev, buf)], nbytes)
            results.append(np.asarray(out).tobytes())
        trace.append((engine.now, ins.op))
    return RunOutcome(results, trace)


def run_peer_modes(seed: int, n_ops: int = 16, n_devices: int = 3,
                   topology=None, shards: int | None = None):
    """One seeded peer program over both transports on fresh clusters.

    Returns ``(expected, {"p2p": RunOutcome, "staged": RunOutcome})``.
    ``topology`` is an optional :class:`~repro.netsim.TopologySpec`, so
    the same oracle covers single-switch and multi-switch fabrics.
    """
    from repro.cluster import ClusterSpec
    from repro.core.protocol import reset_request_ids

    program = generate_peer_program(seed, n_ops, n_devices)
    expected = expected_peer_results(program)
    outcomes: dict[str, RunOutcome] = {}
    for mode in ("p2p", "staged"):
        reset_request_ids()
        cluster = Cluster(ClusterSpec(n_compute=1, n_accelerators=n_devices,
                                      topology=topology),
                          shards=shards)
        sess = cluster.session()
        handles = sess.call(cluster.arm_client(0).alloc(count=n_devices))
        acs = [cluster.remote(0, h) for h in handles]
        outcomes[mode] = sess.call(
            run_peer_program(cluster.engine, acs, program, mode))
    return expected, outcomes


# ---------------------------------------------------------------------------
# Sharded-execution identity: the partitioned engine's equivalence oracle.
#
# Every seeded program family above (memcpy, chaos, peer, tenant) is run
# on a plain Engine and again on a ShardedEngine at several shard counts,
# and the *observations* — downloaded buffer bytes, sha256 trace digests,
# and pool membership events — must be bit-identical.  Partitioning the
# simulation may change how the event loop is organized internally, never
# what the simulation computes.  A multiprocess leg replays the largest
# shard count inside a spawned child process and compares the same
# observations across the process boundary.
# ---------------------------------------------------------------------------

#: The seeded program families the sharded identity oracle covers.
SHARDED_FAMILIES = ("memcpy", "chaos", "peer", "tenant")


def observe_family(family: str, seed: int, shards: int | None) -> dict:
    """One family run at the given shard count, as picklable observations.

    ``shards=None`` runs the plain single :class:`~repro.sim.Engine`;
    any integer runs a :class:`~repro.sim.ShardedEngine` partitioned that
    many ways.  Returned dicts hold only primitives (bytes, str, int,
    float, tuples) so a spawned child process can ship them back whole.
    """
    import hashlib

    if family == "memcpy":
        outcome, timeline = run_memcpy_traced(seed, shards=shards)
        sha = hashlib.sha256()
        for row in timeline:
            sha.update(repr(row).encode())
        return {
            "buffers": list(outcome.results),
            "trace_sha256": sha.hexdigest(),
            "final_now": timeline[-1][2] if timeline else 0.0,
        }
    if family == "chaos":
        report = run_chaos_scenario(chaos_scenario_from_program(seed),
                                    seed=seed, shards=shards)
        return {
            "buffers": sorted(report.buffer_digests.items()),
            "trace_sha256": report.digest,
            "pool_events": list(report.pool_events),
            "counts": (report.submitted, report.completed, report.rejected,
                       report.aborted, report.failed, report.stuck,
                       report.recoveries),
        }
    if family == "peer":
        expected, outcomes = run_peer_modes(seed, shards=shards)
        obs: dict = {"expected": expected}
        for mode, out in sorted(outcomes.items()):
            sha = hashlib.sha256()
            for row in out.trace:
                sha.update(repr(row).encode())
            obs[f"{mode}_buffers"] = list(out.results)
            obs[f"{mode}_trace_sha256"] = sha.hexdigest()
        return obs
    if family == "tenant":
        from repro.workloads.tenants import TenantWorkloadConfig
        from repro.workloads.tenants import run as run_tenants
        report = run_tenants(TenantWorkloadConfig(
            n_tenants=12, n_accelerators=4, n_gateways=2,
            requests_per_tenant=2, window_s=4e-3, seed=seed, shards=shards))
        return {
            "trace_sha256": report.digest,
            "counts": (report.submitted, report.completed, report.rejected,
                       report.aborted, report.preemptions, report.recoveries),
            "duration_s": report.duration_s,
            "fairness": report.fairness,
        }
    raise ValueError(f"unknown program family {family!r}")


def _assert_observations_equal(family: str, seed: int, want: dict,
                               got: dict, label: str) -> None:
    assert set(want) == set(got), (
        f"{family} seed {seed} [{label}]: observation keys diverged")
    for key in sorted(want):
        assert want[key] == got[key], (
            f"{family} seed {seed} [{label}]: {key} diverged from the "
            f"single-engine reference — sharded execution is not "
            f"bit-identical\n  reference: {want[key]!r}\n  sharded:   "
            f"{got[key]!r}")


def _observe_family_child(conn, family: str, seed: int, shards: int,
                          paths: list) -> None:
    """Spawned-child entry point: observe one family, ship the dict back."""
    import sys
    for p in reversed(paths):
        if p not in sys.path:
            sys.path.insert(0, p)
    try:
        conn.send(("ok", observe_family(family, seed, shards)))
    except BaseException as exc:  # ship the traceback, don't die silently
        import traceback
        conn.send(("error", f"{exc!r}\n{traceback.format_exc()}"))
    finally:
        conn.close()


def observe_family_subprocess(family: str, seed: int, shards: int,
                              timeout_s: float = 120.0) -> dict:
    """Run :func:`observe_family` in a spawned child process.

    The child re-imports this module fresh (``spawn`` start method — no
    inherited interpreter state), so identical observations demonstrate
    the sharded run reproduces across a real process boundary, not just
    within one warmed-up interpreter.
    """
    import multiprocessing as mp
    import sys

    ctx = mp.get_context("spawn")
    parent_conn, child_conn = ctx.Pipe()
    proc = ctx.Process(
        target=_observe_family_child,
        args=(child_conn, family, seed, shards, [p for p in sys.path if p]),
        name=f"sharded-observe-{family}", daemon=True)
    proc.start()
    child_conn.close()
    try:
        if not parent_conn.poll(timeout_s):
            raise AssertionError(
                f"{family} seed {seed}: subprocess observation timed out "
                f"after {timeout_s}s")
        tag, payload = parent_conn.recv()
    finally:
        parent_conn.close()
        proc.join(timeout=10.0)
        if proc.is_alive():  # pragma: no cover - defensive teardown
            proc.terminate()
            proc.join(timeout=10.0)
    if tag == "error":
        raise AssertionError(
            f"{family} seed {seed}: subprocess observation failed:\n{payload}")
    return payload


def run_sharded_modes(family: str, seed: int = 0,
                      shard_counts: tuple = (1, 2, 4),
                      multiprocess: bool = False) -> dict:
    """The sharded identity oracle for one seeded program family.

    Runs ``family`` at ``seed`` on a plain engine, then on a
    :class:`~repro.sim.ShardedEngine` at every count in ``shard_counts``
    (and, with ``multiprocess=True``, replays the largest count in a
    spawned child), asserting every leg's buffer bytes, sha256 trace
    digests, and pool events match the single-engine reference exactly.
    Returns ``{label: observations}`` for further assertions.
    """
    reference = observe_family(family, seed, None)
    observed = {"engine": reference}
    for n in shard_counts:
        obs = observe_family(family, seed, n)
        _assert_observations_equal(family, seed, reference, obs,
                                   f"shards={n}")
        observed[f"shards={n}"] = obs
    if multiprocess:
        n = max(shard_counts)
        obs = observe_family_subprocess(family, seed, n)
        _assert_observations_equal(family, seed, reference, obs,
                                   f"shards={n} subprocess")
        observed[f"shards={n} subprocess"] = obs
    return observed
