"""Tests for the kernel cost-model helpers."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.gpusim import TESLA_C1060, XEON_PHI_KNC
from repro.gpusim.timing import (
    gemm_flops,
    gemm_time,
    saturation,
    streaming_time,
    syrk_flops,
    syrk_time,
    trsm_flops,
    trsm_time,
)


class TestSaturation:
    def test_monotone_in_dim(self):
        vals = [saturation(d) for d in (1, 8, 32, 128, 1024)]
        assert vals == sorted(vals)

    def test_bounded(self):
        for d in (1, 16, 512, 10_000):
            assert 0 < saturation(d) < 1

    def test_half_point(self):
        assert saturation(32.0, half_sat=32.0) == pytest.approx(0.5)

    def test_degenerate_dim(self):
        assert saturation(0) == pytest.approx(1e-3)


class TestFlopCounts:
    def test_gemm_flops(self):
        assert gemm_flops(2, 3, 4) == 48

    def test_syrk_half_of_gemm(self):
        # syrk computes a triangle: ~half of the equivalent gemm.
        assert syrk_flops(100, 50) == pytest.approx(
            gemm_flops(100, 100, 50) / 2, rel=0.02)

    def test_trsm_flops(self):
        assert trsm_flops(10, 4) == 160


class TestTimes:
    @given(st.integers(1, 2048), st.integers(1, 2048), st.integers(1, 2048))
    @settings(max_examples=100, deadline=None)
    def test_gemm_time_positive_and_superlinear(self, m, n, k):
        t1 = gemm_time(TESLA_C1060, m, n, k)
        t2 = gemm_time(TESLA_C1060, 2 * m, n, k)
        assert t1 > 0
        assert t2 > t1

    def test_large_gemm_near_advertised_efficiency(self):
        n = 4096
        t = gemm_time(TESLA_C1060, n, n, n)
        achieved = gemm_flops(n, n, n) / t / 1e9
        expected = TESLA_C1060.dp_gflops * TESLA_C1060.gemm_efficiency
        assert achieved == pytest.approx(expected, rel=0.02)

    def test_small_gemm_far_below_peak(self):
        t = gemm_time(TESLA_C1060, 16, 16, 16)
        achieved = gemm_flops(16, 16, 16) / t / 1e9
        assert achieved < 0.4 * TESLA_C1060.dp_gflops

    def test_mic_faster_than_c1060(self):
        n = 2048
        assert gemm_time(XEON_PHI_KNC, n, n, n) < gemm_time(TESLA_C1060, n, n, n)

    def test_trsm_slower_per_flop_than_gemm(self):
        n = 1024
        gemm_rate = gemm_flops(n, 128, 128) / gemm_time(TESLA_C1060, n, 128, 128)
        trsm_rate = trsm_flops(n, 128) / trsm_time(TESLA_C1060, n, 128)
        assert trsm_rate < gemm_rate

    def test_syrk_time_positive(self):
        assert syrk_time(TESLA_C1060, 256, 128) > 0

    def test_streaming_roofline(self):
        # Memory-bound: time set by bytes.
        t_mem = streaming_time(TESLA_C1060, nbytes=1e9, flops=1.0)
        assert t_mem == pytest.approx(1e9 / TESLA_C1060.mem_bw_Bps)
        # Compute-bound: time set by flops.
        t_fl = streaming_time(TESLA_C1060, nbytes=8.0, flops=78e9)
        assert t_fl == pytest.approx(1.0)
