"""Focused DMA tests: copy/compute overlap and utilization accounting."""

import pytest

from repro.gpusim import DMAEngine, GPUDevice, PCIE_GEN2_X16, TESLA_C1060
from repro.sim import Engine
from repro.units import MiB


@pytest.fixture
def eng():
    return Engine()


@pytest.fixture
def dev(eng):
    return GPUDevice(eng, TESLA_C1060)


GEMM = {"A": 0, "B": 0, "C": 0, "m": 2048, "n": 2048, "k": 2048}


class TestCopyComputeOverlap:
    def test_copy_overlaps_kernel_execution(self, eng, dev):
        """DMA and compute are independent resources: total time is the
        max of the two, not the sum (the pipeline protocol's premise)."""
        copy_s = PCIE_GEN2_X16.copy_time(64 * MiB, pinned=True)
        kern_s = (dev.spec.launch_overhead_s
                  + dev.registry.get("dgemm").cost(GEMM, dev.spec))

        def proc():
            c = dev.dma.copy(64 * MiB)
            k = dev.launch("dgemm", GEMM, real=False)
            yield eng.all_of([c, k])
            return eng.now

        total = eng.run(until=eng.process(proc()))
        assert total == pytest.approx(max(copy_s, kern_s))
        assert total < copy_s + kern_s

    def test_serialized_baseline_is_the_sum(self, eng, dev):
        copy_s = PCIE_GEN2_X16.copy_time(64 * MiB, pinned=True)
        kern_s = (dev.spec.launch_overhead_s
                  + dev.registry.get("dgemm").cost(GEMM, dev.spec))

        def proc():
            yield dev.dma.copy(64 * MiB)
            yield dev.launch("dgemm", GEMM, real=False)
            return eng.now

        total = eng.run(until=eng.process(proc()))
        assert total == pytest.approx(copy_s + kern_s)

    def test_overlapped_copies_still_serialize_on_the_engine(self, eng, dev):
        """Two concurrent copies share the single copy engine."""
        one = PCIE_GEN2_X16.copy_time(8 * MiB, pinned=True)

        def proc():
            a = dev.dma.copy(8 * MiB)
            b = dev.dma.copy(8 * MiB)
            yield eng.all_of([a, b])
            return eng.now

        assert eng.run(until=eng.process(proc())) == pytest.approx(2 * one)


class TestBusyTimeAccounting:
    def test_busy_time_counts_transfer_only_not_queueing(self, eng):
        """A copy queued behind another accrues busy time for its own
        duration only — utilization must never exceed 100%."""
        dma = DMAEngine(eng, PCIE_GEN2_X16)
        one = PCIE_GEN2_X16.copy_time(4 * MiB, pinned=True)

        def proc():
            evs = [dma.copy(4 * MiB) for _ in range(3)]
            yield eng.all_of(evs)
            return eng.now

        elapsed = eng.run(until=eng.process(proc()))
        assert dma.busy_time == pytest.approx(3 * one)
        assert dma.busy_time <= elapsed + 1e-12
        assert dma.transfers == 3
        assert dma.bytes_copied == 3 * 4 * MiB

    def test_pinned_and_pageable_accrue_their_own_costs(self, eng):
        dma = DMAEngine(eng, PCIE_GEN2_X16)

        def proc():
            yield dma.copy(MiB, pinned=True)
            yield dma.copy(MiB, pinned=False)

        eng.run(until=eng.process(proc()))
        want = (PCIE_GEN2_X16.copy_time(MiB, True)
                + PCIE_GEN2_X16.copy_time(MiB, False))
        assert dma.busy_time == pytest.approx(want)

    def test_zero_byte_copy_counts_setup_only(self, eng):
        dma = DMAEngine(eng, PCIE_GEN2_X16)

        def proc():
            yield dma.copy(0)

        eng.run(until=eng.process(proc()))
        assert dma.busy_time == pytest.approx(PCIE_GEN2_X16.dma_setup_s)
        assert dma.bytes_copied == 0
        assert dma.transfers == 1
