"""Tests for DMA engine, kernel registry, and device execution."""

import numpy as np
import pytest

from repro.errors import GPUError, KernelError
from repro.gpusim import (
    DMAEngine,
    GPUDevice,
    GPUSpec,
    KernelRegistry,
    PCIeModel,
    PCIE_GEN2_X16,
    TESLA_C1060,
    default_registry,
)
from repro.sim import Engine
from repro.units import MiB, mib_per_s


@pytest.fixture
def eng():
    return Engine()


@pytest.fixture
def dev(eng):
    return GPUDevice(eng, TESLA_C1060)


class TestPCIeModel:
    def test_pinned_faster_than_pageable(self):
        m = PCIE_GEN2_X16
        for n in (64 * 1024, MiB, 64 * MiB):
            assert m.copy_time(n, pinned=True) < m.copy_time(n, pinned=False)

    def test_peak_bandwidths_match_paper(self):
        m = PCIE_GEN2_X16
        assert mib_per_s(m.effective_bandwidth(64 * MiB, pinned=True)) == pytest.approx(5700, rel=0.02)
        assert mib_per_s(m.effective_bandwidth(64 * MiB, pinned=False)) == pytest.approx(4700, rel=0.02)

    def test_setup_dominates_small_copies(self):
        m = PCIE_GEN2_X16
        assert m.copy_time(1, pinned=True) == pytest.approx(m.dma_setup_s, rel=0.01)

    def test_validation(self):
        with pytest.raises(GPUError):
            PCIeModel("bad", 0, 1, 0, 0)
        with pytest.raises(GPUError):
            PCIeModel("bad", 1, 1, -1, 0)
        with pytest.raises(GPUError):
            PCIE_GEN2_X16.copy_time(-5)


class TestDMAEngine:
    def test_copy_takes_model_time(self, eng):
        dma = DMAEngine(eng, PCIE_GEN2_X16)

        def proc():
            yield dma.copy(16 * MiB, pinned=True)
            return eng.now

        p = eng.process(proc())
        assert eng.run(until=p) == pytest.approx(PCIE_GEN2_X16.copy_time(16 * MiB, True))

    def test_copies_serialize(self, eng):
        dma = DMAEngine(eng, PCIE_GEN2_X16)

        def proc():
            a = dma.copy(MiB)
            b = dma.copy(MiB)
            yield eng.all_of([a, b])
            return eng.now

        p = eng.process(proc())
        assert eng.run(until=p) == pytest.approx(2 * PCIE_GEN2_X16.copy_time(MiB, True))

    def test_accounting(self, eng):
        dma = DMAEngine(eng, PCIE_GEN2_X16)

        def proc():
            yield dma.copy(1000)
            yield dma.copy(2000, pinned=False)

        eng.run(until=eng.process(proc()))
        assert dma.transfers == 2
        assert dma.bytes_copied == 3000
        assert dma.busy_time > 0


class TestKernelRegistry:
    def test_register_and_get(self):
        reg = KernelRegistry()
        reg.register("k", lambda d, p: 0, lambda p, s: 1.0)
        assert "k" in reg
        assert reg.get("k").name == "k"

    def test_duplicate_rejected_unless_replace(self):
        reg = KernelRegistry()
        reg.register("k", lambda d, p: 0, lambda p, s: 1.0)
        with pytest.raises(KernelError):
            reg.register("k", lambda d, p: 1, lambda p, s: 2.0)
        reg.register("k", lambda d, p: 1, lambda p, s: 2.0, replace=True)

    def test_unknown_kernel(self):
        reg = KernelRegistry()
        with pytest.raises(KernelError, match="unknown kernel"):
            reg.get("nope")

    def test_clone_is_independent(self):
        reg = default_registry()
        c = reg.clone()
        c.register("extra", lambda d, p: 0, lambda p, s: 0.0)
        assert "extra" in c
        assert "extra" not in reg

    def test_negative_cost_rejected(self):
        reg = KernelRegistry()
        k = reg.register("bad", lambda d, p: 0, lambda p, s: -1.0)
        with pytest.raises(KernelError, match="negative cost"):
            k.cost({}, TESLA_C1060)

    def test_default_registry_contents(self):
        names = default_registry().names()
        for expected in ("fill", "daxpy", "dscal", "ddot", "dgemm", "dsyrk", "dtrsm"):
            assert expected in names


class TestDeviceExecution:
    def test_daxpy_computes(self, eng, dev):
        n = 100
        x = dev.memory.malloc(8 * n)
        y = dev.memory.malloc(8 * n)
        dev.memory.write_array(x, np.full(n, 2.0))
        dev.memory.write_array(y, np.full(n, 1.0))

        def proc():
            rc = yield dev.launch("daxpy", {"x": x, "y": y, "n": n, "alpha": 3.0})
            return rc

        rc = eng.run(until=eng.process(proc()))
        assert rc == 0
        np.testing.assert_allclose(dev.memory.read_array(y), np.full(n, 7.0))

    def test_dgemm_matches_numpy(self, eng, dev):
        rng = np.random.default_rng(1)
        m, n, k = 12, 9, 7
        A, B = rng.standard_normal((m, k)), rng.standard_normal((k, n))
        C = rng.standard_normal((m, n))
        pa, pb, pc = (dev.memory.malloc(arr.nbytes) for arr in (A, B, C))
        dev.memory.write_array(pa, A)
        dev.memory.write_array(pb, B)
        dev.memory.write_array(pc, C)

        def proc():
            yield dev.launch("dgemm", {"A": pa, "B": pb, "C": pc,
                                       "m": m, "n": n, "k": k,
                                       "alpha": 2.0, "beta": 0.5})

        eng.run(until=eng.process(proc()))
        np.testing.assert_allclose(dev.memory.read_array(pc), 2.0 * A @ B + 0.5 * C)

    def test_dgemm_transposed_operands(self, eng, dev):
        rng = np.random.default_rng(2)
        m, n, k = 6, 5, 4
        At = rng.standard_normal((k, m))  # stored transposed
        B = rng.standard_normal((k, n))
        C = np.zeros((m, n))
        pa, pb, pc = (dev.memory.malloc(arr.nbytes) for arr in (At, B, C))
        dev.memory.write_array(pa, At)
        dev.memory.write_array(pb, B)
        dev.memory.write_array(pc, C)

        def proc():
            yield dev.launch("dgemm", {"A": pa, "B": pb, "C": pc,
                                       "m": m, "n": n, "k": k,
                                       "ta": True, "beta": 0.0})

        eng.run(until=eng.process(proc()))
        np.testing.assert_allclose(dev.memory.read_array(pc), At.T @ B)

    def test_dtrsm_solves(self, eng, dev):
        rng = np.random.default_rng(3)
        nb, m = 5, 8
        T = np.tril(rng.standard_normal((nb, nb))) + 5 * np.eye(nb)
        X = rng.standard_normal((m, nb))
        B = X @ T.T  # so the solve must recover X
        pt, pb = dev.memory.malloc(T.nbytes), dev.memory.malloc(B.nbytes)
        dev.memory.write_array(pt, T)
        dev.memory.write_array(pb, B)

        def proc():
            yield dev.launch("dtrsm", {"T": pt, "B": pb, "m": m, "nb": nb})

        eng.run(until=eng.process(proc()))
        np.testing.assert_allclose(dev.memory.read_array(pb), X, atol=1e-10)

    def test_timed_mode_charges_time_without_numerics(self, eng, dev):
        def proc():
            yield dev.launch("dgemm", {"A": 0, "B": 0, "C": 0,
                                       "m": 2048, "n": 2048, "k": 2048},
                             real=False)
            return eng.now

        t = eng.run(until=eng.process(proc()))
        # 2*2048^3 flops at ~62 GF/s is a fraction of a second.
        assert 0.1 < t < 1.0
        assert dev.kernels_launched == 1

    def test_kernels_serialize_on_device(self, eng, dev):
        def proc():
            a = dev.launch("dgemm", {"A": 0, "B": 0, "C": 0, "m": 512, "n": 512, "k": 512}, real=False)
            b = dev.launch("dgemm", {"A": 0, "B": 0, "C": 0, "m": 512, "n": 512, "k": 512}, real=False)
            yield eng.all_of([a, b])
            return eng.now

        t2 = eng.run(until=eng.process(proc()))
        eng2 = Engine()
        dev2 = GPUDevice(eng2, TESLA_C1060)

        def solo():
            yield dev2.launch("dgemm", {"A": 0, "B": 0, "C": 0, "m": 512, "n": 512, "k": 512}, real=False)
            return eng2.now

        t1 = eng2.run(until=eng2.process(solo()))
        assert t2 == pytest.approx(2 * t1, rel=0.01)

    def test_missing_param_raises(self, eng, dev):
        with pytest.raises(KernelError, match="missing kernel parameter"):
            dev.launch("daxpy", {"x": 0})

    def test_utilization_accounting(self, eng, dev):
        def proc():
            yield dev.launch("dgemm", {"A": 0, "B": 0, "C": 0, "m": 256, "n": 256, "k": 256}, real=False)
            yield eng.timeout(10.0)

        eng.run(until=eng.process(proc()))
        assert 0 < dev.utilization() < 0.2


class TestGPUSpec:
    def test_c1060_peak(self):
        assert TESLA_C1060.dp_gflops == 78.0

    def test_flops_time(self):
        t = TESLA_C1060.flops_time(78e9, efficiency=1.0)
        assert t == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(GPUError):
            GPUSpec("bad", 0, 0.5, 1, 1, 0, PCIE_GEN2_X16)
        with pytest.raises(GPUError):
            GPUSpec("bad", 1, 1.5, 1, 1, 0, PCIE_GEN2_X16)
        with pytest.raises(GPUError):
            GPUSpec("bad", 1, 0.5, 1, 1, -1, PCIE_GEN2_X16)
