"""Tests for CUDA-style streams."""

import numpy as np
import pytest

from repro.errors import GPUError
from repro.gpusim import GPUDevice, Stream, TESLA_C1060
from repro.sim import Engine
from repro.units import MiB


@pytest.fixture
def eng():
    return Engine()


@pytest.fixture
def dev(eng):
    return GPUDevice(eng, TESLA_C1060)


GEMM = {"A": 0, "B": 0, "C": 0, "m": 512, "n": 512, "k": 512}


class TestStreamOrdering:
    def test_ops_execute_in_submission_order(self, eng, dev):
        s = Stream(dev)
        n = 64
        x = dev.memory.malloc(8 * n)
        dev.memory.write_array(x, np.ones(n))
        # scale by 2 then add 1*itself -> 4: order matters.
        s.launch("dscal", {"x": x, "n": n, "alpha": 2.0})
        s.launch("daxpy", {"x": x, "y": x, "n": n, "alpha": 1.0})
        eng.run(until=s.synchronize())
        np.testing.assert_allclose(dev.memory.read_array(x), np.full(n, 4.0))

    def test_synchronize_empty_stream(self, eng, dev):
        s = Stream(dev)
        ev = s.synchronize()
        eng.run()
        assert ev.triggered

    def test_copy_then_kernel_serializes_within_stream(self, eng, dev):
        s = Stream(dev)
        s.copy(16 * MiB)
        s.launch("dgemm", GEMM, real=False)
        eng.run(until=s.synchronize())
        t_serial = eng.now
        # Lower bound: sum of the two op durations.
        t_copy = TESLA_C1060.pcie.copy_time(16 * MiB)
        assert t_serial >= t_copy

    def test_two_streams_overlap_copy_and_compute(self, eng, dev):
        s1 = Stream(dev)
        s2 = Stream(dev)
        # Stream 1: long DMA; stream 2: long kernel.  They overlap because
        # the copy and compute engines are independent.
        s1.copy(32 * MiB)
        s2.launch("dgemm", GEMM, real=False)
        done = eng.all_of([s1.synchronize(), s2.synchronize()])
        eng.run(until=done)
        overlapped = eng.now

        eng2 = Engine()
        dev2 = GPUDevice(eng2, TESLA_C1060)
        s = Stream(dev2)
        s.copy(32 * MiB)
        s.launch("dgemm", GEMM, real=False)
        eng2.run(until=s.synchronize())
        serial = eng2.now
        assert overlapped < serial * 0.95

    def test_kernels_in_different_streams_still_serialize(self, eng, dev):
        # One compute engine: two kernels cannot overlap.
        s1, s2 = Stream(dev), Stream(dev)
        s1.launch("dgemm", GEMM, real=False)
        s2.launch("dgemm", GEMM, real=False)
        eng.run(until=eng.all_of([s1.synchronize(), s2.synchronize()]))
        t_two = eng.now
        eng2 = Engine()
        dev2 = GPUDevice(eng2, TESLA_C1060)
        s = Stream(dev2)
        s.launch("dgemm", GEMM, real=False)
        eng2.run(until=s.synchronize())
        assert t_two == pytest.approx(2 * eng2.now, rel=0.01)

    def test_negative_copy_rejected(self, dev):
        with pytest.raises(GPUError):
            Stream(dev).copy(-1)

    def test_ops_counted(self, eng, dev):
        s = Stream(dev)
        s.copy(100)
        s.copy(100)
        s.launch("dgemm", GEMM, real=False)
        assert s.ops_submitted == 3
