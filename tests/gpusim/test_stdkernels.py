"""Direct numerics tests for the remaining built-in kernels."""

import numpy as np
import pytest

from repro.gpusim import GPUDevice, TESLA_C1060
from repro.sim import Engine


@pytest.fixture
def eng():
    return Engine()


@pytest.fixture
def dev(eng):
    return GPUDevice(eng, TESLA_C1060)


def run(eng, ev):
    def proc():
        out = yield ev
        return out

    return eng.run(until=eng.process(proc()))


class TestFill:
    def test_fills_value(self, eng, dev):
        n = 50
        p = dev.memory.malloc(8 * n)
        rc = run(eng, dev.launch("fill", {"dst": p, "n": n, "value": 2.5}))
        assert rc == 0
        np.testing.assert_array_equal(
            dev.memory.view(p, "float64", (n,)), np.full(n, 2.5))

    def test_fill_int_dtype(self, eng, dev):
        n = 10
        p = dev.memory.malloc(8 * n)
        run(eng, dev.launch("fill", {"dst": p, "n": n, "value": 7,
                                     "dtype": "int64"}))
        np.testing.assert_array_equal(
            dev.memory.view(p, "int64", (n,)), np.full(n, 7))


class TestDot:
    def test_dot_matches_numpy(self, eng, dev):
        rng = np.random.default_rng(0)
        n = 200
        x, y = rng.standard_normal(n), rng.standard_normal(n)
        px, py = dev.memory.malloc(8 * n), dev.memory.malloc(8 * n)
        pout = dev.memory.malloc(8)
        dev.memory.write_array(px, x)
        dev.memory.write_array(py, y)
        dev.memory.set_array_meta(pout, "float64", (1,))
        run(eng, dev.launch("ddot", {"x": px, "y": py, "out": pout, "n": n}))
        assert dev.memory.read_array(pout)[0] == pytest.approx(float(x @ y))


class TestSyrk:
    def test_syrk_matches_numpy(self, eng, dev):
        rng = np.random.default_rng(1)
        n, k = 8, 5
        A = rng.standard_normal((n, k))
        C = rng.standard_normal((n, n))
        pa, pc = dev.memory.malloc(A.nbytes), dev.memory.malloc(C.nbytes)
        dev.memory.write_array(pa, A)
        dev.memory.write_array(pc, C)
        run(eng, dev.launch("dsyrk", {"A": pa, "C": pc, "n": n, "k": k,
                                      "alpha": 2.0, "beta": 0.5}))
        np.testing.assert_allclose(dev.memory.read_array(pc),
                                   2.0 * A @ A.T + 0.5 * C)

    def test_syrk_cost_cheaper_than_gemm(self, eng, dev):
        syrk = dev.registry.get("dsyrk").cost({"n": 512, "k": 512},
                                              TESLA_C1060)
        gemm = dev.registry.get("dgemm").cost({"m": 512, "n": 512, "k": 512},
                                              TESLA_C1060)
        assert syrk < gemm


class TestGemmBeta:
    def test_beta_zero_ignores_garbage(self, eng, dev):
        rng = np.random.default_rng(2)
        m = n = k = 6
        A, B = rng.standard_normal((m, k)), rng.standard_normal((k, n))
        pa, pb = dev.memory.malloc(A.nbytes), dev.memory.malloc(B.nbytes)
        pc = dev.memory.malloc(8 * m * n)
        dev.memory.write_array(pa, A)
        dev.memory.write_array(pb, B)
        dev.memory.write_array(pc, np.full((m, n), np.nan))
        run(eng, dev.launch("dgemm", {"A": pa, "B": pb, "C": pc,
                                      "m": m, "n": n, "k": k, "beta": 0.0}))
        np.testing.assert_allclose(dev.memory.read_array(pc), A @ B)
