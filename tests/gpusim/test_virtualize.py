"""Tests for GPU virtualization: partitions, WFQ time-slicing, revocation."""

import numpy as np
import pytest

from repro.errors import DeviceMemoryError, GPUError
from repro.gpusim import GPUDevice, MemoryPartition, TESLA_C1060
from repro.sim import Engine
from repro.units import MiB


@pytest.fixture
def eng():
    return Engine()


@pytest.fixture
def dev(eng):
    return GPUDevice(eng, TESLA_C1060)


class TestMemoryPartition:
    def test_quota_enforced(self, dev):
        part = MemoryPartition(dev.memory, quota_bytes=2 * MiB, name="t")
        a = part.malloc(MiB)
        part.malloc(MiB)
        assert part.used_bytes == 2 * MiB
        assert part.free_quota == 0
        with pytest.raises(DeviceMemoryError):
            part.malloc(1)
        part.free(a)
        assert part.free_quota == MiB

    def test_quota_is_accounting_not_carveout(self, dev):
        # Two partitions can together exceed either quota's footprint in
        # the same underlying arena; the arena itself is shared.
        p1 = MemoryPartition(dev.memory, quota_bytes=MiB, name="a")
        p2 = MemoryPartition(dev.memory, quota_bytes=MiB, name="b")
        p1.malloc(MiB)
        p2.malloc(MiB)
        assert dev.memory.used_bytes == 2 * MiB

    def test_ownership(self, dev):
        p1 = MemoryPartition(dev.memory, quota_bytes=MiB, name="a")
        p2 = MemoryPartition(dev.memory, quota_bytes=MiB, name="b")
        addr = p1.malloc(1024)
        assert p1.owns(addr)
        assert not p2.owns(addr)
        with pytest.raises(DeviceMemoryError):
            p2.free(addr)
        p1.free(addr)
        assert not p1.owns(addr)

    def test_release_all(self, dev):
        part = MemoryPartition(dev.memory, quota_bytes=4 * MiB, name="t")
        part.malloc(MiB)
        part.malloc(MiB)
        freed = part.release_all()
        assert freed == 2 * MiB
        assert part.used_bytes == 0
        assert dev.memory.used_bytes == 0


class TestVirtualize:
    def test_virtualize_shares_device(self, dev):
        v = dev.virtualize("v0", share=2.0, mem_quota=4 * MiB)
        assert v.device is dev
        assert v.share == 2.0
        assert v.memory.quota_bytes == 4 * MiB
        assert v.spec is dev.spec

    def test_launch_runs_real_kernel(self, eng, dev):
        v = dev.virtualize("v0")
        addr = v.memory.malloc(8 * 16)
        x = dev.memory.view(addr, dtype="float64", shape=(16,))
        x[:] = 2.0
        ev = v.launch("dscal", {"x": addr, "n": 16, "alpha": 3.0})
        eng.run(until=ev)
        np.testing.assert_array_equal(x, np.full(16, 6.0))
        assert v.kernels_launched == 1
        assert v.busy_time > 0

    def test_wfq_shares_drive_throughput(self, eng, dev):
        # Backlogged 2:1 shares: the heavy tenant finishes its batch of
        # equal-cost kernels in roughly half the fast tenant's span.
        heavy = dev.virtualize("heavy", share=2.0)
        light = dev.virtualize("light", share=1.0)
        n = 1 << 16
        done = {}

        def _finish(name):
            def cb(_ev, name=name):
                done[name] = eng.now
            return cb

        for vg, label in ((heavy, "heavy"), (light, "light")):
            last = None
            for i in range(12):
                last = vg.launch("dscal", {"n": n, "alpha": 1.0, "x": 0},
                                 real=False)
            last.add_callback(_finish(label))
        eng.run()
        assert done["heavy"] < done["light"]
        # Start-time fair queueing: the heavy tenant's 12th launch lands
        # around 2/3 through the combined busy period.
        assert done["heavy"] / done["light"] == pytest.approx(2 / 3, rel=0.15)

    def test_slicer_deterministic_tie_break(self, eng, dev):
        a = dev.virtualize("a", share=1.0)
        b = dev.virtualize("b", share=1.0)
        order = []
        for i in range(3):
            a.launch("fill", {"n": 256, "value": 0.0, "dst": 0},
                     real=False).add_callback(lambda _e, i=i: order.append(("a", i)))
            b.launch("fill", {"n": 256, "value": 0.0, "dst": 0},
                     real=False).add_callback(lambda _e, i=i: order.append(("b", i)))
        eng.run()
        # Equal shares, equal costs: submission order wins every tie.
        assert order == [("a", 0), ("b", 0), ("a", 1), ("b", 1),
                         ("a", 2), ("b", 2)]

    def test_revoke_frees_memory_and_blocks_launches(self, eng, dev):
        v = dev.virtualize("v0", mem_quota=4 * MiB)
        v.memory.malloc(MiB)
        v.memory.malloc(MiB)
        freed = v.revoke()
        assert freed == 2 * MiB
        assert dev.memory.used_bytes == 0
        assert v.revoked
        with pytest.raises(GPUError, match="revoked"):
            v.launch("fill", {"n": 1, "value": 0.0, "dst": 0}, real=False)

    def test_sibling_survives_revocation(self, eng, dev):
        doomed = dev.virtualize("doomed")
        keeper = dev.virtualize("keeper")
        kaddr = keeper.memory.malloc(1024)
        doomed.memory.malloc(1024)
        doomed.revoke()
        assert keeper.memory.owns(kaddr)
        ev = keeper.launch("fill", {"n": 128, "value": 1.0, "dst": kaddr})
        eng.run(until=ev)
        out = dev.memory.view(kaddr, dtype="float64", shape=(128,))
        np.testing.assert_array_equal(out, np.ones(128))
