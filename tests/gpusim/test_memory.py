"""Device-memory allocator tests, including hypothesis invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import DeviceMemoryError
from repro.gpusim import DeviceMemory


class TestMallocFree:
    def test_simple_alloc(self):
        mem = DeviceMemory(1000)
        a = mem.malloc(100)
        assert mem.used_bytes == 100
        assert mem.n_allocations == 1
        mem.free(a)
        assert mem.used_bytes == 0

    def test_sequential_allocs_do_not_overlap(self):
        mem = DeviceMemory(1000)
        a = mem.malloc(100)
        b = mem.malloc(200)
        c = mem.malloc(300)
        spans = sorted([(a, 100), (b, 200), (c, 300)])
        for (s1, n1), (s2, _) in zip(spans, spans[1:]):
            assert s1 + n1 <= s2

    def test_exhaustion_raises(self):
        mem = DeviceMemory(1000)
        mem.malloc(800)
        with pytest.raises(DeviceMemoryError, match="out of device memory"):
            mem.malloc(300)

    def test_free_reuses_space(self):
        mem = DeviceMemory(1000)
        a = mem.malloc(600)
        mem.free(a)
        b = mem.malloc(900)  # only fits if the space came back
        assert b == 0

    def test_coalescing_after_out_of_order_frees(self):
        mem = DeviceMemory(1000)
        ptrs = [mem.malloc(250) for _ in range(4)]
        for p in (ptrs[1], ptrs[3], ptrs[0], ptrs[2]):
            mem.free(p)
        assert mem.largest_free_block() == 1000

    def test_double_free_raises(self):
        mem = DeviceMemory(100)
        a = mem.malloc(50)
        mem.free(a)
        with pytest.raises(DeviceMemoryError):
            mem.free(a)

    def test_free_bogus_address_raises(self):
        mem = DeviceMemory(100)
        with pytest.raises(DeviceMemoryError):
            mem.free(12345)

    def test_zero_size_rejected(self):
        mem = DeviceMemory(100)
        with pytest.raises(DeviceMemoryError):
            mem.malloc(0)

    def test_fragmentation_blocks_large_alloc(self):
        mem = DeviceMemory(1000)
        ptrs = [mem.malloc(100) for _ in range(10)]
        for p in ptrs[::2]:  # free alternating blocks: 5 holes of 100
            mem.free(p)
        assert mem.used_bytes == 500
        with pytest.raises(DeviceMemoryError):
            mem.malloc(200)  # no hole is big enough despite 500 free


class TestDataAccess:
    def test_write_read_roundtrip(self):
        mem = DeviceMemory(1000)
        a = mem.malloc(100)
        mem.write(a, 0, b"\x01\x02\x03")
        out = mem.read(a, 0, 3)
        assert bytes(out) == b"\x01\x02\x03"

    def test_write_at_offset(self):
        mem = DeviceMemory(1000)
        a = mem.malloc(10)
        mem.write(a, 4, b"\xff\xff")
        out = mem.read(a)
        assert bytes(out) == b"\x00" * 4 + b"\xff\xff" + b"\x00" * 4

    def test_write_overflow_rejected(self):
        mem = DeviceMemory(1000)
        a = mem.malloc(10)
        with pytest.raises(DeviceMemoryError):
            mem.write(a, 8, b"\x00\x00\x00")

    def test_read_overflow_rejected(self):
        mem = DeviceMemory(1000)
        a = mem.malloc(10)
        with pytest.raises(DeviceMemoryError):
            mem.read(a, 5, 10)

    def test_array_roundtrip_preserves_dtype_shape(self):
        mem = DeviceMemory(10_000)
        a = mem.malloc(800)
        arr = np.arange(100, dtype=np.float64).reshape(10, 10)
        mem.write_array(a, arr)
        out = mem.read_array(a)
        assert out.dtype == np.float64
        assert out.shape == (10, 10)
        np.testing.assert_array_equal(out, arr)

    def test_view_is_mutable_zero_copy(self):
        mem = DeviceMemory(1000)
        a = mem.malloc(80)
        mem.write_array(a, np.zeros(10))
        v = mem.view(a)
        v[3] = 7.0
        assert mem.read_array(a)[3] == 7.0

    def test_view_without_meta_raises(self):
        mem = DeviceMemory(1000)
        a = mem.malloc(80)
        with pytest.raises(DeviceMemoryError, match="no recorded dtype"):
            mem.view(a)

    def test_set_array_meta_enables_view(self):
        mem = DeviceMemory(1000)
        a = mem.malloc(80)
        mem.set_array_meta(a, "float64", (10,))
        v = mem.view(a)
        assert v.shape == (10,)
        np.testing.assert_array_equal(v, np.zeros(10))

    def test_oversized_array_rejected(self):
        mem = DeviceMemory(1000)
        a = mem.malloc(8)
        with pytest.raises(DeviceMemoryError):
            mem.write_array(a, np.zeros(10))

    def test_oversized_meta_rejected(self):
        mem = DeviceMemory(1000)
        a = mem.malloc(8)
        with pytest.raises(DeviceMemoryError):
            mem.set_array_meta(a, "float64", (10,))

    def test_block_writes_assemble_full_payload(self):
        # The pipeline protocol writes sequential blocks at offsets.
        mem = DeviceMemory(10_000)
        a = mem.malloc(1000)
        payload = np.random.default_rng(0).integers(0, 256, 1000).astype(np.uint8)
        for off in range(0, 1000, 128):
            chunk = payload[off:off + 128]
            mem.write(a, off, chunk)
        np.testing.assert_array_equal(mem.read(a), payload)


@st.composite
def alloc_scripts(draw):
    """A sequence of (op, size) operations for the allocator."""
    n = draw(st.integers(1, 40))
    ops = []
    for _ in range(n):
        if draw(st.booleans()):
            ops.append(("malloc", draw(st.integers(1, 300))))
        else:
            ops.append(("free", draw(st.integers(0, 10))))
    return ops


class TestAllocatorProperties:
    @given(alloc_scripts())
    @settings(max_examples=200, deadline=None)
    def test_no_overlap_and_conservation(self, script):
        mem = DeviceMemory(2048)
        live: dict[int, int] = {}
        for op, arg in script:
            if op == "malloc":
                try:
                    addr = mem.malloc(arg)
                except DeviceMemoryError:
                    continue
                assert addr not in live
                live[addr] = arg
            else:
                if not live:
                    continue
                addr = sorted(live)[arg % len(live)]
                mem.free(addr)
                del live[addr]
            # Invariant: allocations within capacity and pairwise disjoint.
            spans = sorted((a, s) for a, s in live.items())
            for (a1, s1), (a2, _) in zip(spans, spans[1:]):
                assert a1 + s1 <= a2
            for a, s in spans:
                assert 0 <= a and a + s <= mem.capacity
            # Invariant: used byte accounting is exact.
            assert mem.used_bytes == sum(live.values())
        # Free everything: memory must coalesce back to one block.
        for addr in list(live):
            mem.free(addr)
        assert mem.largest_free_block() == mem.capacity

    @given(st.lists(st.integers(1, 64), min_size=1, max_size=50))
    @settings(max_examples=100, deadline=None)
    def test_data_survives_neighbour_churn(self, sizes):
        mem = DeviceMemory(64 * 64)
        keeper = mem.malloc(64)
        marker = np.arange(64, dtype=np.uint8)
        mem.write(keeper, 0, marker)
        ptrs = []
        for s in sizes:
            try:
                ptrs.append(mem.malloc(s))
            except DeviceMemoryError:
                break
        for p in ptrs:
            mem.free(p)
        np.testing.assert_array_equal(mem.read(keeper), marker)


class TestZeroCopyLoans:
    """``copy=False`` reads: read-only loans with allocation-level COW."""

    def test_read_loan_is_read_only_and_zero_copy(self):
        from repro.buffers import copy_stats

        mem = DeviceMemory(1000)
        a = mem.malloc(100)
        mem.write(a, 0, np.arange(100, dtype=np.uint8))
        copy_stats.reset()
        loan = mem.read(a, copy=False)
        assert copy_stats.payload_copies == 0
        assert not loan.flags.writeable
        with pytest.raises(ValueError):
            loan[0] = 1
        np.testing.assert_array_equal(loan, np.arange(100, dtype=np.uint8))

    def test_read_array_loan_keeps_dtype_shape(self):
        mem = DeviceMemory(10_000)
        a = mem.malloc(800)
        arr = np.arange(100, dtype=np.float64).reshape(10, 10)
        mem.write_array(a, arr)
        loan = mem.read_array(a, copy=False)
        assert loan.dtype == np.float64
        assert loan.shape == (10, 10)
        assert not loan.flags.writeable
        np.testing.assert_array_equal(loan, arr)

    def test_loan_is_cow_isolated_from_later_writes(self):
        from repro.buffers import copy_stats

        mem = DeviceMemory(1000)
        a = mem.malloc(64)
        mem.write(a, 0, np.full(64, 7, dtype=np.uint8))
        loan = mem.read(a, copy=False)
        copy_stats.reset()
        mem.write(a, 0, np.full(64, 9, dtype=np.uint8))
        assert copy_stats.cow_copies >= 1
        assert (loan == 7).all(), "write leaked into an outstanding loan"
        np.testing.assert_array_equal(mem.read(a),
                                      np.full(64, 9, dtype=np.uint8))

    def test_copy_true_read_is_private_and_mutable(self):
        mem = DeviceMemory(1000)
        a = mem.malloc(32)
        mem.write(a, 0, np.arange(32, dtype=np.uint8))
        out = mem.read(a)
        out[:] = 0
        np.testing.assert_array_equal(mem.read(a),
                                      np.arange(32, dtype=np.uint8))
