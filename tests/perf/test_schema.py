"""Benchmark JSON schema, speedup orientation, and the regression gate."""

import copy

import pytest

from repro.perf import (
    BENCHMARKS,
    BenchSchemaError,
    REGRESSION_GATES,
    SCHEMA,
    attach_baseline,
    check_regressions,
    speedup,
    validate_bench,
)


def _doc(**overrides):
    doc = {
        "schema": SCHEMA,
        "mode": "quick",
        "created": "2026-08-06T00:00:00Z",
        "host": {"python": "3.12"},
        "zero_copy": True,
        "benchmarks": {
            "engine_events": {"value": 1_000_000.0, "unit": "events/s",
                              "better": "higher", "wall_s": 0.05,
                              "detail": {"timeouts": 50_000}},
            "fig05_large": {"value": 0.25, "unit": "s",
                            "better": "lower", "wall_s": 0.25},
        },
    }
    doc.update(overrides)
    return doc


def test_valid_document_passes():
    validate_bench(_doc())


@pytest.mark.parametrize("mutate, match", [
    (lambda d: d.update(schema="repro-perf/0"), "schema"),
    (lambda d: d.update(mode="fast"), "mode"),
    (lambda d: d.update(created=""), "created"),
    (lambda d: d.update(host=None), "host"),
    (lambda d: d.update(zero_copy="yes"), "zero_copy"),
    (lambda d: d.update(benchmarks={}), "benchmarks"),
    (lambda d: d["benchmarks"]["engine_events"].pop("value"), "value"),
    (lambda d: d["benchmarks"]["engine_events"].update(value="fast"),
     "number"),
    (lambda d: d["benchmarks"]["engine_events"].update(value=-1.0),
     "non-negative"),
    (lambda d: d["benchmarks"]["engine_events"].update(better="bigger"),
     "better"),
    (lambda d: d["benchmarks"]["engine_events"].update(unit=""), "unit"),
    (lambda d: d["benchmarks"]["engine_events"].update(detail="x"), "detail"),
    (lambda d: d.update(baseline={"benchmarks": {"x": "NaN-ish"}}),
     "baseline"),
    (lambda d: d.update(speedups={"engine_events": 0.0}), "speedups"),
])
def test_corrupted_documents_are_rejected(mutate, match):
    doc = _doc()
    mutate(doc)
    with pytest.raises(BenchSchemaError, match=match):
        validate_bench(doc)


def test_speedup_orientation():
    # higher-is-better: new 200 vs old 100 is a 2x improvement...
    assert speedup("higher", 200.0, 100.0) == pytest.approx(2.0)
    # ...and lower-is-better: new 0.5s vs old 1.0s is also 2x.
    assert speedup("lower", 0.5, 1.0) == pytest.approx(2.0)
    assert speedup("higher", 50.0, 100.0) == pytest.approx(0.5)
    with pytest.raises(BenchSchemaError):
        speedup("higher", 0.0, 100.0)


def test_attach_baseline_computes_oriented_speedups():
    doc = _doc()
    old = copy.deepcopy(_doc())
    old["benchmarks"]["engine_events"]["value"] = 500_000.0
    old["benchmarks"]["fig05_large"]["value"] = 1.0
    attach_baseline(doc, old, path="OLD.json")
    assert doc["baseline"]["path"] == "OLD.json"
    assert doc["speedups"]["engine_events"] == pytest.approx(2.0)
    assert doc["speedups"]["fig05_large"] == pytest.approx(4.0)
    validate_bench(doc)


def test_regression_gate_fails_only_beyond_tolerance():
    base = _doc()
    ok = copy.deepcopy(base)
    tolerance = REGRESSION_GATES["engine_events"]
    # Just inside the tolerance: no failure.
    ok["benchmarks"]["engine_events"]["value"] = (
        base["benchmarks"]["engine_events"]["value"] * (1.0 - tolerance + 0.02))
    assert check_regressions(ok, base) == []
    # Beyond it: one failure naming the benchmark.
    bad = copy.deepcopy(base)
    bad["benchmarks"]["engine_events"]["value"] = (
        base["benchmarks"]["engine_events"]["value"] * (1.0 - tolerance - 0.05))
    failures = check_regressions(bad, base)
    assert len(failures) == 1
    assert "engine_events" in failures[0]


def test_gate_ignores_missing_benchmarks():
    doc = _doc()
    base = copy.deepcopy(doc)
    del base["benchmarks"]["engine_events"]
    assert check_regressions(doc, base) == []


def test_registered_benchmarks_are_well_formed():
    names = [b.name for b in BENCHMARKS]
    assert len(names) == len(set(names))
    for bench in BENCHMARKS:
        assert bench.better in ("higher", "lower")
        assert bench.unit
    # Every gated benchmark exists and runs in quick mode (CI smoke).
    by_name = {b.name: b for b in BENCHMARKS}
    for name in REGRESSION_GATES:
        assert name in by_name
        assert by_name[name].quick


def test_suite_quick_run_produces_valid_document():
    """One real (tiny) suite invocation end to end."""
    from repro.perf import run_suite

    doc = run_suite(quick=True, only=["engine_events"])
    validate_bench(doc)
    bench = doc["benchmarks"]["engine_events"]
    assert bench["value"] > 0
    assert doc["mode"] == "quick"


def test_checked_in_baseline_is_schema_valid():
    import os

    from repro.perf import load_json

    path = os.path.join(os.path.dirname(__file__), "..", "..",
                        "benchmarks", "perf", "baseline.json")
    doc = load_json(path)
    assert doc["mode"] == "quick"
    for name in REGRESSION_GATES:
        assert name in doc["benchmarks"], (
            f"gated benchmark {name} missing from the checked-in baseline")
