"""Unit and property tests for the MP2C physics pieces."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import WorkloadError
from repro.workloads.mp2c import (
    MP2CConfig,
    SlabDecomposition,
    kinetic_energy,
    lj_forces,
    momentum,
    srd_collision,
    thermal_velocities,
    velocity_verlet,
)
from repro.workloads.mp2c.srd import cell_index, random_axes, rotation_matrices


class TestSRD:
    def setup_method(self):
        rng = np.random.default_rng(0)
        self.box = np.array([8.0, 8.0, 8.0])
        n = 640
        self.pos = rng.uniform(0, 8.0, (n, 3))
        self.vel = thermal_velocities(rng, n)

    def test_conserves_kinetic_energy(self):
        v2 = srd_collision(self.pos, self.vel, self.box, 1.0,
                           np.radians(130), seed=1)
        assert kinetic_energy(v2) == pytest.approx(kinetic_energy(self.vel))

    def test_conserves_total_momentum(self):
        v2 = srd_collision(self.pos, self.vel, self.box, 1.0,
                           np.radians(130), seed=2)
        np.testing.assert_allclose(momentum(v2), momentum(self.vel), atol=1e-9)

    def test_conserves_momentum_per_cell(self):
        seed = 3
        # Reproduce the internal grid shift to bin identically.
        rng = np.random.default_rng(seed)
        shift = np.array([rng.uniform(0, 1.0) for _ in range(3)])
        cells = cell_index(self.pos, self.box, 1.0, shift)
        v2 = srd_collision(self.pos, self.vel, self.box, 1.0,
                           np.radians(130), seed=seed)
        for c in np.unique(cells)[:50]:
            mask = cells == c
            np.testing.assert_allclose(self.vel[mask].sum(axis=0),
                                       v2[mask].sum(axis=0), atol=1e-9)

    def test_deterministic_given_seed(self):
        a = srd_collision(self.pos, self.vel, self.box, 1.0, 2.0, seed=7)
        b = srd_collision(self.pos, self.vel, self.box, 1.0, 2.0, seed=7)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = srd_collision(self.pos, self.vel, self.box, 1.0, 2.0, seed=7)
        b = srd_collision(self.pos, self.vel, self.box, 1.0, 2.0, seed=8)
        assert not np.allclose(a, b)

    def test_actually_mixes_velocities(self):
        v2 = srd_collision(self.pos, self.vel, self.box, 1.0,
                           np.radians(130), seed=9)
        assert not np.allclose(v2, self.vel)

    def test_empty_input(self):
        v2 = srd_collision(np.zeros((0, 3)), np.zeros((0, 3)),
                           self.box, 1.0, 2.0, seed=1)
        assert v2.shape == (0, 3)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(WorkloadError):
            srd_collision(np.zeros((4, 3)), np.zeros((5, 3)),
                          self.box, 1.0, 2.0, seed=1)

    @given(st.integers(0, 2**31 - 1), st.integers(2, 200))
    @settings(max_examples=50, deadline=None)
    def test_property_energy_momentum_invariants(self, seed, n):
        rng = np.random.default_rng(seed)
        pos = rng.uniform(0, 6.0, (n, 3))
        vel = rng.normal(0, 1, (n, 3))
        box = np.array([6.0, 6.0, 6.0])
        v2 = srd_collision(pos, vel, box, 1.0, np.radians(130), seed=seed)
        assert kinetic_energy(v2) == pytest.approx(kinetic_energy(vel), rel=1e-9)
        np.testing.assert_allclose(momentum(v2), momentum(vel), atol=1e-7)

    def test_rotation_matrices_orthogonal(self):
        rng = np.random.default_rng(1)
        axes = random_axes(rng, 20)
        R = rotation_matrices(axes, np.radians(130))
        for i in range(20):
            np.testing.assert_allclose(R[i] @ R[i].T, np.eye(3), atol=1e-12)
            assert np.linalg.det(R[i]) == pytest.approx(1.0)

    def test_thermal_velocities_zero_momentum(self):
        v = thermal_velocities(np.random.default_rng(2), 500, temperature=2.0)
        np.testing.assert_allclose(v.sum(axis=0), 0, atol=1e-10)


class TestSlabDecomposition:
    def test_bounds_cover_box(self):
        d = SlabDecomposition(box=(8.0, 8.0, 8.0), n_ranks=4)
        edges = [d.bounds(r) for r in range(4)]
        assert edges[0][0] == 0.0
        assert edges[-1][1] == 8.0
        for (lo1, hi1), (lo2, _) in zip(edges, edges[1:]):
            assert hi1 == lo2

    def test_owner_of(self):
        d = SlabDecomposition(box=(8.0, 8.0, 8.0), n_ranks=2)
        pos = np.array([[1.0, 0, 0], [5.0, 0, 0], [3.9, 0, 0], [4.0, 0, 0]])
        np.testing.assert_array_equal(d.owner_of(pos), [0, 1, 0, 1])

    def test_split_leavers_partition(self):
        d = SlabDecomposition(box=(8.0, 8.0, 8.0), n_ranks=2)
        rng = np.random.default_rng(3)
        pos = rng.uniform(0, 8.0, (100, 3))
        vel = rng.normal(0, 1, (100, 3))
        stay_p, stay_v, out = d.split_leavers(0, pos, vel)
        moved = sum(p.shape[0] for p, _ in out.values())
        assert stay_p.shape[0] + moved == 100
        assert np.all(d.owner_of(stay_p) == 0)
        for dest, (p, _) in out.items():
            assert np.all(d.owner_of(p) == dest)

    def test_unaligned_box_rejected(self):
        with pytest.raises(WorkloadError, match="whole number"):
            SlabDecomposition(box=(8.5, 8.0, 8.0), n_ranks=2)

    def test_uneven_split_rejected(self):
        with pytest.raises(WorkloadError, match="evenly"):
            SlabDecomposition(box=(9.0, 9.0, 9.0), n_ranks=2)

    def test_neighbors_periodic(self):
        d = SlabDecomposition(box=(9.0, 9.0, 9.0), n_ranks=3)
        assert d.neighbors(0) == (2, 1)
        assert d.neighbors(2) == (1, 0)


class TestMDPieces:
    def test_lj_forces_newton_third_law(self):
        rng = np.random.default_rng(4)
        box = np.array([10.0, 10.0, 10.0])
        pos = rng.uniform(0, 10.0, (60, 3))
        forces, _ = lj_forces(pos, box)
        np.testing.assert_allclose(forces.sum(axis=0), 0, atol=1e-9)

    def test_lj_repulsive_at_close_range(self):
        box = np.array([10.0, 10.0, 10.0])
        pos = np.array([[5.0, 5.0, 5.0], [5.9, 5.0, 5.0]])
        forces, energy = lj_forces(pos, box)
        assert forces[0, 0] < 0  # pushed apart
        assert forces[1, 0] > 0
        assert energy > 0

    def test_lj_matches_brute_force(self):
        rng = np.random.default_rng(5)
        box = np.array([12.0, 12.0, 12.0])
        pos = rng.uniform(0, 12.0, (40, 3))
        forces, energy = lj_forces(pos, box, rcut=2.5)
        # Brute force reference.
        f_ref = np.zeros_like(pos)
        e_ref = 0.0
        for i in range(40):
            for j in range(i + 1, 40):
                d = pos[i] - pos[j]
                d -= box * np.round(d / box)
                r2 = d @ d
                if r2 < 2.5 ** 2:
                    sr6 = (1.0 / r2) ** 3
                    fmag = 24 * (2 * sr6 * sr6 - sr6) / r2
                    f_ref[i] += fmag * d
                    f_ref[j] -= fmag * d
                    e_ref += 4 * (sr6 * sr6 - sr6)
        np.testing.assert_allclose(forces, f_ref, atol=1e-9)
        assert energy == pytest.approx(e_ref)

    def test_verlet_energy_stable(self):
        rng = np.random.default_rng(6)
        box = np.array([12.0, 12.0, 12.0])
        n = 64
        # Loose lattice start to avoid overlaps.
        grid = np.stack(np.meshgrid(*[np.arange(4)] * 3), -1).reshape(-1, 3)
        pos = (grid * 3.0 + 1.5).astype(np.float64)
        vel = thermal_velocities(rng, n, temperature=0.3)
        forces, e_pot = lj_forces(pos, box)
        e0 = kinetic_energy(vel) + e_pot
        for _ in range(50):
            forces, e_pot = velocity_verlet(pos, vel, forces, box, dt=0.005)
        e1 = kinetic_energy(vel) + e_pot
        assert abs(e1 - e0) / max(abs(e0), 1.0) < 0.02

    def test_too_small_box_rejected(self):
        with pytest.raises(WorkloadError, match="too small"):
            lj_forces(np.zeros((2, 3)), np.array([3.0, 3.0, 3.0]), rcut=2.5)


class TestMP2CConfig:
    def test_paper_cells(self):
        cfg = MP2CConfig(n_particles=10_000_000)
        assert cfg.n_cells == 1_000_000
        assert cfg.box_edge_cells() == 100
        assert cfg.n_srd_steps == 60

    def test_validation(self):
        with pytest.raises(WorkloadError):
            MP2CConfig(n_particles=0)
        with pytest.raises(WorkloadError):
            MP2CConfig(n_particles=10, steps=0)
        with pytest.raises(WorkloadError):
            MP2CConfig(n_particles=10, alpha_deg=400)
