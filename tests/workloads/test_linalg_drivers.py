"""Integration tests: multi-GPU QR / Cholesky on local and remote backends."""

import numpy as np
import pytest

from repro.baselines import LocalAccelerator
from repro.cluster import Cluster, paper_testbed
from repro.workloads.linalg import (
    cholesky_factorize,
    qr_factorize,
    reconstruct_q,
)


def remote_accelerators(count):
    cluster = Cluster(paper_testbed(n_compute=1, n_accelerators=count))
    sess = cluster.session()
    handles = sess.call(cluster.arm_client(0).alloc(count=count))
    acs = [cluster.remote(0, h) for h in handles]
    return cluster, sess, acs


def local_accelerator():
    cluster = Cluster(paper_testbed(n_compute=1, n_accelerators=0,
                                    local_gpus=True))
    node = cluster.compute_nodes[0]
    return cluster, cluster.session(), [
        LocalAccelerator(cluster.engine, node.local_gpu, node.cpu)]


def spd_matrix(n, seed=0):
    rng = np.random.default_rng(seed)
    M = rng.standard_normal((n, n))
    return M @ M.T + n * np.eye(n)


class TestQRCorrectness:
    @pytest.mark.parametrize("g", [1, 2, 3])
    def test_remote_qr_reproduces_a(self, g):
        n, nb = 96, 32
        rng = np.random.default_rng(g)
        A = rng.standard_normal((n, n))
        cluster, sess, acs = remote_accelerators(g)
        node = cluster.compute_nodes[0]
        res = sess.call(qr_factorize(cluster.engine, node.cpu, acs, n, nb, A=A))
        Q = reconstruct_q(n, res.reflectors)
        np.testing.assert_allclose(Q.T @ Q, np.eye(n), atol=1e-9)
        np.testing.assert_allclose(Q @ res.R, A, atol=1e-8)

    def test_local_qr_reproduces_a(self):
        n, nb = 80, 32
        A = np.random.default_rng(9).standard_normal((n, n))
        cluster, sess, acs = local_accelerator()
        node = cluster.compute_nodes[0]
        res = sess.call(qr_factorize(cluster.engine, node.cpu, acs, n, nb, A=A))
        Q = reconstruct_q(n, res.reflectors)
        np.testing.assert_allclose(Q @ res.R, A, atol=1e-8)

    def test_qr_non_divisible_n(self):
        n, nb = 70, 32  # 70 = 2*32 + 6: narrow last panel
        A = np.random.default_rng(11).standard_normal((n, n))
        cluster, sess, acs = remote_accelerators(2)
        node = cluster.compute_nodes[0]
        res = sess.call(qr_factorize(cluster.engine, node.cpu, acs, n, nb, A=A))
        Q = reconstruct_q(n, res.reflectors)
        np.testing.assert_allclose(Q @ res.R, A, atol=1e-8)

    def test_qr_r_upper_triangular(self):
        n = 64
        A = np.random.default_rng(12).standard_normal((n, n))
        cluster, sess, acs = remote_accelerators(1)
        node = cluster.compute_nodes[0]
        res = sess.call(qr_factorize(cluster.engine, node.cpu, acs, n, 32, A=A))
        np.testing.assert_allclose(res.R, np.triu(res.R), atol=1e-12)

    def test_qr_matches_numpy_r_magnitudes(self):
        n = 64
        A = np.random.default_rng(13).standard_normal((n, n))
        cluster, sess, acs = remote_accelerators(2)
        node = cluster.compute_nodes[0]
        res = sess.call(qr_factorize(cluster.engine, node.cpu, acs, n, 16, A=A))
        _, R_np = np.linalg.qr(A)
        np.testing.assert_allclose(np.abs(res.R), np.abs(R_np), atol=1e-8)


class TestCholeskyCorrectness:
    @pytest.mark.parametrize("g", [1, 2, 3])
    def test_remote_cholesky_reproduces_a(self, g):
        n, nb = 96, 32
        A = spd_matrix(n, seed=g)
        cluster, sess, acs = remote_accelerators(g)
        node = cluster.compute_nodes[0]
        res = sess.call(cholesky_factorize(cluster.engine, node.cpu, acs,
                                           n, nb, A=A))
        np.testing.assert_allclose(res.L @ res.L.T, A, atol=1e-7)
        np.testing.assert_allclose(res.L, np.tril(res.L), atol=1e-12)

    def test_local_cholesky_reproduces_a(self):
        n, nb = 80, 32
        A = spd_matrix(n, seed=42)
        cluster, sess, acs = local_accelerator()
        node = cluster.compute_nodes[0]
        res = sess.call(cholesky_factorize(cluster.engine, node.cpu, acs,
                                           n, nb, A=A))
        np.testing.assert_allclose(res.L @ res.L.T, A, atol=1e-7)

    def test_cholesky_non_divisible_n(self):
        n, nb = 70, 32
        A = spd_matrix(n, seed=5)
        cluster, sess, acs = remote_accelerators(3)
        node = cluster.compute_nodes[0]
        res = sess.call(cholesky_factorize(cluster.engine, node.cpu, acs,
                                           n, nb, A=A))
        np.testing.assert_allclose(res.L @ res.L.T, A, atol=1e-7)

    def test_cholesky_matches_numpy(self):
        n = 64
        A = spd_matrix(n, seed=6)
        cluster, sess, acs = remote_accelerators(2)
        node = cluster.compute_nodes[0]
        res = sess.call(cholesky_factorize(cluster.engine, node.cpu, acs,
                                           n, 16, A=A))
        np.testing.assert_allclose(res.L, np.linalg.cholesky(A), atol=1e-8)


class TestTimedMode:
    def test_timed_qr_charges_time_no_data(self):
        cluster, sess, acs = remote_accelerators(2)
        node = cluster.compute_nodes[0]
        res = sess.call(qr_factorize(cluster.engine, node.cpu, acs,
                                     n=1024, nb=128))
        assert res.R is None
        assert res.seconds > 0.01
        assert res.gflops > 1.0

    def test_timed_cholesky_charges_time(self):
        cluster, sess, acs = remote_accelerators(2)
        node = cluster.compute_nodes[0]
        res = sess.call(cholesky_factorize(cluster.engine, node.cpu, acs,
                                           n=1024, nb=128))
        assert res.L is None
        assert res.seconds > 0.005

    def test_memory_released_after_run(self):
        cluster, sess, acs = remote_accelerators(2)
        node = cluster.compute_nodes[0]
        sess.call(qr_factorize(cluster.engine, node.cpu, acs, n=512, nb=128))
        for ac_node in cluster.accelerator_nodes:
            assert ac_node.gpu.memory.used_bytes == 0

    def test_multi_gpu_faster_than_single_at_scale(self):
        # The paper's core claim at the workload level: 3 network GPUs beat
        # 1 network GPU for a large enough matrix.
        c1, s1, a1 = remote_accelerators(1)
        r1 = s1.call(qr_factorize(c1.engine, c1.compute_nodes[0].cpu, a1,
                                  n=4096, nb=128))
        c3, s3, a3 = remote_accelerators(3)
        r3 = s3.call(qr_factorize(c3.engine, c3.compute_nodes[0].cpu, a3,
                                  n=4096, nb=128))
        assert r3.seconds < r1.seconds
        assert r3.gflops / r1.gflops > 1.5

    def test_local_beats_one_remote_qr(self):
        # QR is bandwidth-sensitive: one network-attached GPU must be
        # slower than the node-attached one (Fig. 9).
        cl, sl, al = local_accelerator()
        rl = sl.call(qr_factorize(cl.engine, cl.compute_nodes[0].cpu, al,
                                  n=2048, nb=128))
        cr, sr, ar = remote_accelerators(1)
        rr = sr.call(qr_factorize(cr.engine, cr.compute_nodes[0].cpu, ar,
                                  n=2048, nb=128))
        assert rr.seconds > rl.seconds
