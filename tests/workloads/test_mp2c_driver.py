"""Integration tests: the full MP2C driver on the simulated cluster."""

import numpy as np
import pytest

from repro.baselines import LocalAccelerator
from repro.cluster import Cluster, paper_testbed
from repro.workloads.mp2c import (
    MP2CConfig,
    kinetic_energy,
    momentum,
    run_mp2c,
    thermal_velocities,
)


def small_config(**kw):
    defaults = dict(n_particles=2000, steps=10, srd_every=5, dt=0.02)
    defaults.update(kw)
    return MP2CConfig(**defaults)


def make_initial(cfg, n_ranks, seed=0):
    """Per-rank particle arrays inside each rank's slab."""
    rng = np.random.default_rng(seed)
    edge_cells = cfg.box_edge_cells()
    cells_x = edge_cells + (n_ranks - edge_cells % n_ranks) % n_ranks
    box = np.array([cells_x * cfg.cell_size,
                    edge_cells * cfg.cell_size,
                    edge_cells * cfg.cell_size])
    slab = box[0] / n_ranks
    out = []
    per_rank = cfg.n_particles // n_ranks
    for r in range(n_ranks):
        pos = rng.uniform(0, 1, (per_rank, 3)) * np.array(
            [slab, box[1], box[2]])
        pos[:, 0] += r * slab
        vel = thermal_velocities(rng, per_rank)
        out.append((pos, vel))
    return out


def remote_setup(n_ranks):
    cluster = Cluster(paper_testbed(n_compute=n_ranks, n_accelerators=n_ranks))
    sess = cluster.session()
    acs = []
    for i in range(n_ranks):
        handles = sess.call(cluster.arm_client(i).alloc(count=1))
        acs.append(cluster.remote(i, handles[0]))
    ranks = [cluster.compute_rank(i) for i in range(n_ranks)]
    return cluster, sess, ranks, acs


def local_setup(n_ranks):
    cluster = Cluster(paper_testbed(n_compute=n_ranks, n_accelerators=0,
                                    local_gpus=True))
    sess = cluster.session()
    acs = [LocalAccelerator(cluster.engine, node.local_gpu, node.cpu)
           for node in cluster.compute_nodes]
    ranks = [cluster.compute_rank(i) for i in range(n_ranks)]
    return cluster, sess, ranks, acs


class TestRealRuns:
    @pytest.mark.parametrize("setup", [remote_setup, local_setup])
    def test_two_rank_run_conserves_particles(self, setup):
        cfg = small_config()
        cluster, sess, ranks, acs = setup(2)
        initial = make_initial(cfg, 2)
        res = sess.call(run_mp2c(cluster.engine, cluster.compute_nodes[0].cpu,
                                 ranks, acs, cfg, initial=initial))
        total = sum(p.shape[0] for p, _ in res.final)
        assert total == cfg.n_particles // 2 * 2
        assert res.seconds > 0

    def test_energy_conserved_without_forces(self):
        # Pure streaming + SRD rotations: kinetic energy is invariant.
        cfg = small_config(steps=10)
        cluster, sess, ranks, acs = remote_setup(2)
        initial = make_initial(cfg, 2, seed=1)
        e0 = sum(kinetic_energy(v) for _, v in initial)
        res = sess.call(run_mp2c(cluster.engine, cluster.compute_nodes[0].cpu,
                                 ranks, acs, cfg, initial=initial))
        e1 = sum(kinetic_energy(v) for _, v in res.final)
        assert e1 == pytest.approx(e0, rel=1e-9)

    def test_momentum_conserved(self):
        cfg = small_config(steps=10)
        cluster, sess, ranks, acs = remote_setup(2)
        initial = make_initial(cfg, 2, seed=2)
        p0 = sum(momentum(v) for _, v in initial)
        res = sess.call(run_mp2c(cluster.engine, cluster.compute_nodes[0].cpu,
                                 ranks, acs, cfg, initial=initial))
        p1 = sum(momentum(v) for _, v in res.final)
        np.testing.assert_allclose(p1, p0, atol=1e-7)

    def test_particles_stay_in_their_slab(self):
        cfg = small_config(steps=10)
        cluster, sess, ranks, acs = remote_setup(2)
        initial = make_initial(cfg, 2, seed=3)
        res = sess.call(run_mp2c(cluster.engine, cluster.compute_nodes[0].cpu,
                                 ranks, acs, cfg, initial=initial))
        cells_x = cfg.box_edge_cells() + cfg.box_edge_cells() % 2
        slab = cells_x * cfg.cell_size / 2
        for r, (pos, _) in enumerate(res.final):
            assert np.all(pos[:, 0] >= r * slab - 1e-9)
            assert np.all(pos[:, 0] < (r + 1) * slab + 1e-9)

    def test_local_and_remote_agree_numerically(self):
        # Same seeds, same physics: the architecture must not change the
        # trajectory, only the virtual clock.
        cfg = small_config(steps=10)
        cl, sl, rl, al = local_setup(2)
        rr_ = remote_setup(2)
        cr, sr, rrk, ar = rr_
        res_l = sl.call(run_mp2c(cl.engine, cl.compute_nodes[0].cpu,
                                 rl, al, cfg, initial=make_initial(cfg, 2, 4)))
        res_r = sr.call(run_mp2c(cr.engine, cr.compute_nodes[0].cpu,
                                 rrk, ar, cfg, initial=make_initial(cfg, 2, 4)))
        for (p1, v1), (p2, v2) in zip(res_l.final, res_r.final):
            np.testing.assert_allclose(np.sort(p1, axis=0),
                                       np.sort(p2, axis=0), atol=1e-9)
            np.testing.assert_allclose(np.sort(v1, axis=0),
                                       np.sort(v2, axis=0), atol=1e-9)

    def test_single_rank_run(self):
        cfg = small_config(steps=5)
        cluster, sess, ranks, acs = remote_setup(1)
        initial = make_initial(cfg, 1, seed=5)
        res = sess.call(run_mp2c(cluster.engine, cluster.compute_nodes[0].cpu,
                                 ranks, acs, cfg, initial=initial))
        assert res.final[0][0].shape[0] == cfg.n_particles


class TestTimedRuns:
    def test_timed_run_charges_md_and_transfer_time(self):
        cfg = MP2CConfig(n_particles=200_000, steps=10, srd_every=5)
        cluster, sess, ranks, acs = remote_setup(2)
        res = sess.call(run_mp2c(cluster.engine, cluster.compute_nodes[0].cpu,
                                 ranks, acs, cfg))
        # 10 steps x 100k local particles x 0.92us ~ 0.9s minimum.
        assert res.seconds > 0.8
        assert res.final is None

    def test_remote_slower_but_bounded(self):
        # The paper's claim: the dynamic architecture costs at most ~4%.
        cfg = MP2CConfig(n_particles=500_000, steps=20, srd_every=5)
        cl, sl, rl, al = local_setup(2)
        res_l = sl.call(run_mp2c(cl.engine, cl.compute_nodes[0].cpu,
                                 rl, al, cfg))
        cr, sr, rrk, ar = remote_setup(2)
        res_r = sr.call(run_mp2c(cr.engine, cr.compute_nodes[0].cpu,
                                 rrk, ar, cfg))
        slowdown = res_r.seconds / res_l.seconds - 1.0
        assert slowdown > 0.0
        assert slowdown < 0.05
