"""Unit tests for distribution and CPU panel numerics."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import WorkloadError
from repro.workloads.linalg import BlockCyclic, householder_panel
from repro.workloads.linalg.panel import (
    apply_block_reflector,
    form_t,
    panel_qr_flops,
    potf2,
    potf2_flops,
)


class TestBlockCyclic:
    def test_panel_count(self):
        assert BlockCyclic(1024, 128, 2).n_panels == 8
        assert BlockCyclic(1000, 128, 2).n_panels == 8
        assert BlockCyclic(1025, 128, 2).n_panels == 9

    def test_round_robin_ownership(self):
        d = BlockCyclic(1024, 128, 3)
        assert [d.owner(j) for j in range(8)] == [0, 1, 2, 0, 1, 2, 0, 1]

    def test_panels_partition_columns(self):
        d = BlockCyclic(1000, 128, 3)
        cols = []
        for j in range(d.n_panels):
            s = d.cols(j)
            cols.extend(range(s.start, s.stop))
        assert cols == list(range(1000))

    def test_last_panel_narrow(self):
        d = BlockCyclic(1000, 128, 2)
        assert d.width(d.n_panels - 1) == 1000 - 7 * 128

    def test_panels_of_is_partition(self):
        d = BlockCyclic(2048, 128, 3)
        all_panels = sorted(p for g in range(3) for p in d.panels_of(g))
        assert all_panels == list(range(d.n_panels))

    def test_trailing_panels(self):
        d = BlockCyclic(1024, 128, 2)
        assert d.trailing_panels_of(0, 3) == [4, 6]
        assert d.trailing_panels_of(1, 3) == [5, 7]

    def test_validation(self):
        with pytest.raises(WorkloadError):
            BlockCyclic(0, 128, 1)
        with pytest.raises(WorkloadError):
            BlockCyclic(128, 0, 1)
        with pytest.raises(WorkloadError):
            BlockCyclic(128, 128, 0)
        with pytest.raises(WorkloadError):
            BlockCyclic(128, 64, 1).owner(5)

    @given(n=st.integers(1, 600), nb=st.integers(1, 130), g=st.integers(1, 5))
    @settings(max_examples=100, deadline=None)
    def test_distribution_properties(self, n, nb, g):
        d = BlockCyclic(n, nb, g)
        widths = [d.width(j) for j in range(d.n_panels)]
        assert sum(widths) == n
        assert all(0 < w <= nb for w in widths)
        owners = {j: d.owner(j) for j in range(d.n_panels)}
        for gpu in range(g):
            assert d.panels_of(gpu) == [j for j, o in owners.items() if o == gpu]


class TestHouseholderPanel:
    def test_reproduces_r(self):
        rng = np.random.default_rng(0)
        A = rng.standard_normal((40, 8))
        V, T, R = householder_panel(A)
        # Applying Q^T to the original panel must give [[R],[0]].
        C = A.copy()
        apply_block_reflector(V, T, C)
        np.testing.assert_allclose(C[:8], R, atol=1e-10)
        np.testing.assert_allclose(C[8:], 0, atol=1e-10)

    def test_matches_numpy_qr_magnitudes(self):
        rng = np.random.default_rng(1)
        A = rng.standard_normal((30, 6))
        _, _, R = householder_panel(A)
        _, R_np = np.linalg.qr(A)
        np.testing.assert_allclose(np.abs(R), np.abs(R_np), atol=1e-10)

    def test_v_unit_lower_trapezoidal(self):
        rng = np.random.default_rng(2)
        V, _, _ = householder_panel(rng.standard_normal((20, 5)))
        for j in range(5):
            assert V[j, j] == pytest.approx(1.0)
            np.testing.assert_allclose(V[:j, j], 0, atol=1e-14)

    def test_q_orthonormal(self):
        rng = np.random.default_rng(3)
        A = rng.standard_normal((25, 7))
        V, T, _ = householder_panel(A)
        Q = np.eye(25) - V @ T @ V.T
        np.testing.assert_allclose(Q.T @ Q, np.eye(25), atol=1e-10)

    def test_wide_panel_rejected(self):
        with pytest.raises(WorkloadError, match="tall"):
            householder_panel(np.zeros((3, 5)))

    def test_zero_column_handled(self):
        A = np.zeros((10, 3))
        A[:, 1] = np.arange(10)
        V, T, R = householder_panel(A)
        C = A.copy()
        apply_block_reflector(V, T, C)
        np.testing.assert_allclose(C[3:], 0, atol=1e-10)

    @given(st.integers(0, 2**31 - 1), st.integers(2, 12), st.integers(0, 20))
    @settings(max_examples=60, deadline=None)
    def test_property_qt_a_gives_r(self, seed, w, extra):
        rng = np.random.default_rng(seed)
        h = w + extra
        A = rng.standard_normal((h, w))
        V, T, R = householder_panel(A)
        C = A.copy()
        apply_block_reflector(V, T, C)
        np.testing.assert_allclose(C[:w], R, atol=1e-8)
        np.testing.assert_allclose(C[w:], 0, atol=1e-8)

    def test_flop_counts_positive_and_monotone(self):
        assert panel_qr_flops(100, 8) < panel_qr_flops(200, 8)
        assert potf2_flops(64) < potf2_flops(128)


class TestPotf2:
    def test_factors_spd(self):
        rng = np.random.default_rng(4)
        M = rng.standard_normal((12, 12))
        A = M @ M.T + 12 * np.eye(12)
        L = potf2(A)
        np.testing.assert_allclose(L @ L.T, A, atol=1e-9)

    def test_rejects_indefinite(self):
        with pytest.raises(WorkloadError, match="positive definite"):
            potf2(-np.eye(4))


class TestFormT:
    def test_t_upper_triangular(self):
        rng = np.random.default_rng(5)
        V, T, _ = householder_panel(rng.standard_normal((15, 6)))
        np.testing.assert_allclose(T, np.triu(T), atol=1e-14)
