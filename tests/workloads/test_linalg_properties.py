"""Property-based tests: factorizations over random geometries.

Random (n, nb, g, lookahead) combinations must all reproduce numpy's
factorizations through the full middleware path — panel widths that don't
divide n, more GPUs than panels, single-panel matrices, etc.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.cluster import Cluster, paper_testbed
from repro.workloads.linalg import (
    cholesky_factorize,
    qr_factorize,
    reconstruct_q,
)


def remote(g):
    cluster = Cluster(paper_testbed(n_compute=1, n_accelerators=g))
    sess = cluster.session()
    handles = sess.call(cluster.arm_client(0).alloc(count=g))
    acs = [cluster.remote(0, h) for h in handles]
    return cluster, sess, acs


class TestRandomGeometries:
    @given(n=st.integers(8, 72), nb=st.integers(4, 40),
           g=st.integers(1, 3), lookahead=st.booleans(),
           seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=12, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_qr_reproduces_a(self, n, nb, g, lookahead, seed):
        A = np.random.default_rng(seed).standard_normal((n, n))
        cluster, sess, acs = remote(g)
        res = sess.call(qr_factorize(cluster.engine,
                                     cluster.compute_nodes[0].cpu,
                                     acs, n, nb, A=A, lookahead=lookahead))
        Q = reconstruct_q(n, res.reflectors)
        np.testing.assert_allclose(Q @ res.R, A, atol=1e-7)
        np.testing.assert_allclose(Q.T @ Q, np.eye(n), atol=1e-8)
        np.testing.assert_allclose(res.R, np.triu(res.R), atol=1e-11)

    @given(n=st.integers(8, 72), nb=st.integers(4, 40),
           g=st.integers(1, 3), seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=12, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_cholesky_reproduces_a(self, n, nb, g, seed):
        M = np.random.default_rng(seed).standard_normal((n, n))
        A = M @ M.T + n * np.eye(n)
        cluster, sess, acs = remote(g)
        res = sess.call(cholesky_factorize(cluster.engine,
                                           cluster.compute_nodes[0].cpu,
                                           acs, n, nb, A=A))
        np.testing.assert_allclose(res.L @ res.L.T, A,
                                   atol=1e-7 * n)
        np.testing.assert_allclose(res.L, np.tril(res.L), atol=1e-11)

    def test_more_gpus_than_panels(self):
        # 1 panel, 3 GPUs: two GPUs stay idle but nothing breaks.
        n, nb = 16, 32
        A = np.random.default_rng(1).standard_normal((n, n))
        cluster, sess, acs = remote(3)
        res = sess.call(qr_factorize(cluster.engine,
                                     cluster.compute_nodes[0].cpu,
                                     acs, n, nb, A=A))
        Q = reconstruct_q(n, res.reflectors)
        np.testing.assert_allclose(Q @ res.R, A, atol=1e-9)

    def test_nb_equal_n(self):
        n = 24
        M = np.random.default_rng(2).standard_normal((n, n))
        A = M @ M.T + n * np.eye(n)
        cluster, sess, acs = remote(2)
        res = sess.call(cholesky_factorize(cluster.engine,
                                           cluster.compute_nodes[0].cpu,
                                           acs, n, nb=n, A=A))
        np.testing.assert_allclose(res.L, np.linalg.cholesky(A), atol=1e-9)
