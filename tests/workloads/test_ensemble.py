"""Tests for the ensemble job-service workload (determinism + identity)."""

import dataclasses

import pytest

from repro.errors import WorkloadError
from repro.workloads import ensemble


def _small(seed=3, **overrides):
    kwargs = dict(n_jobs=24, n_accelerators=2, n_gateways=2,
                  slots_per_device=2, seed=seed)
    kwargs.update(overrides)
    return ensemble.EnsembleConfig(**kwargs)


class TestConfig:
    @pytest.mark.parametrize("kwargs", [
        {"n_jobs": 0},
        {"n_accelerators": 0},
        {"n_accelerators": 9},
        {"n_gateways": 0},
        {"slots_per_device": 0},
        {"window_s": -1.0},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(WorkloadError):
            _small(**kwargs)


class TestGenerate:
    def test_pure_in_seed(self):
        a = ensemble.generate_specs(_small(seed=7))
        b = ensemble.generate_specs(_small(seed=7))
        assert [(s.name, s.tenant, s.priority, s.deps, s.arrival_s)
                for s in a] \
            == [(s.name, s.tenant, s.priority, s.deps, s.arrival_s)
                for s in b]

    def test_shape(self):
        specs = ensemble.generate_specs(_small())
        assert len(specs) == 24
        names = {s.name for s in specs}
        tenants = {c[0] for c in ensemble.DEFAULT_CLASSES}
        for s in specs:
            assert s.tenant in tenants
            assert all(d in names for d in s.deps)
            assert 1 <= s.n_accelerators <= 2


class TestRun:
    def test_all_jobs_complete(self):
        report = ensemble.run(_small())
        assert report.submitted == 24
        assert report.done == 24
        assert report.failed == 0 and report.cancelled == 0
        assert report.jobs_per_s > 0
        assert 0.0 < report.latency_p50_s <= report.latency_p99_s
        assert report.per_tenant

    def test_same_seed_bit_identical_digest(self):
        a = ensemble.run(_small(seed=5))
        b = ensemble.run(_small(seed=5))
        assert a.digest == b.digest
        assert a.duration_s == b.duration_s
        assert a.jobs_per_s == b.jobs_per_s

    def test_different_seed_different_digest(self):
        assert ensemble.run(_small(seed=5)).digest \
            != ensemble.run(_small(seed=6)).digest

    def test_warm_paths_preserve_outcomes_and_speed_up(self):
        warm = ensemble.run(_small())
        cold = ensemble.run(dataclasses.replace(
            _small(), coalescing=False, caching=False))
        # The identity property: coalescing + caching never change any
        # job's outcome, only the virtual clock.
        assert warm.digest == cold.digest
        assert warm.done == cold.done == 24
        # Virtual time is deterministic, so this ratio is exact, not a
        # flaky wall-clock measurement.  The headline >= 1.5x gate (on
        # the benchmark-sized ensemble) lives in repro.perf.
        assert warm.jobs_per_s > cold.jobs_per_s
        assert warm.kernel_cache_hits > 0
        assert warm.alloc_cache_hits > 0
        assert warm.leases_reused > 0
        assert cold.kernel_cache_hits == 0
        assert cold.leases_reused == 0

    def test_format_report(self):
        report = ensemble.run(_small())
        text = ensemble.format_report(report)
        assert report.digest[:16] in text
        assert "jobs 24" in text
        for tenant in report.per_tenant:
            assert tenant in text
