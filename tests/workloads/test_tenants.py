"""Tests for the open-loop multi-tenant workload generator."""

import pytest

from repro.errors import MiddlewareError
from repro.workloads import tenants


def _small(seed=0, **overrides):
    kwargs = dict(n_tenants=24, n_accelerators=2, n_gateways=2,
                  slots_per_device=2, requests_per_tenant=2,
                  window_s=2e-3, payload_bytes=64 * 1024, seed=seed)
    kwargs.update(overrides)
    return tenants.TenantWorkloadConfig(**kwargs)


class TestConfig:
    @pytest.mark.parametrize("kwargs", [
        {"n_tenants": 0},
        {"n_accelerators": 0},
        {"n_accelerators": 9},
        {"n_gateways": 0},
        {"requests_per_tenant": 0},
        {"window_s": 0.0},
        {"payload_bytes": 4},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(MiddlewareError):
            _small(**kwargs)


class TestRun:
    def test_every_request_accounted(self):
        report = tenants.run(_small())
        assert report.submitted == 48
        assert (report.completed + report.rejected + report.aborted
                == report.submitted)
        assert report.completed > 0

    def test_contended_run_preempts_and_recovers(self):
        report = tenants.run(_small())
        # 48 arrivals in 2 ms over 4 slots: priorities must collide.
        assert report.preemptions > 0
        assert report.recoveries > 0

    def test_same_seed_bit_identical_digest(self):
        a = tenants.run(_small(seed=11))
        b = tenants.run(_small(seed=11))
        assert a.digest == b.digest
        assert a.duration_s == b.duration_s
        assert a.per_tenant == b.per_tenant

    def test_different_seed_different_digest(self):
        a = tenants.run(_small(seed=11))
        b = tenants.run(_small(seed=12))
        assert a.digest != b.digest

    def test_latency_percentiles_present(self):
        report = tenants.run(_small())
        assert 0.0 < report.latency_p50_s <= report.latency_p99_s
        assert report.per_tenant
        for row in report.per_tenant.values():
            assert row["count"] >= 1
            assert 0.0 < row["p50_s"] <= row["p99_s"]

    def test_fairness_from_registry(self):
        report = tenants.run(_small())
        assert 0.0 < report.fairness <= 1.0
        assert report.registry.value("tenant.fairness_jain") == report.fairness
        assert report.registry.histograms("tenant.latency_s")

    def test_report_renders(self):
        report = tenants.run(_small())
        text = tenants.format_report(report)
        assert "fairness" in text
        assert "p99" in text
        assert "digest" in text
