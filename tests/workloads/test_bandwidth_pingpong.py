"""Tests for the bandwidthTest and IMB PingPong ports."""

import pytest

from repro.cluster import Cluster, paper_testbed
from repro.netsim import IB_QDR_MPI
from repro.units import KiB, MiB
from repro.workloads.bandwidth import BandwidthPoint, paper_sizes, sweep
from repro.workloads.pingpong import run_pingpong


@pytest.fixture
def rig():
    cluster = Cluster(paper_testbed(n_compute=2, n_accelerators=1))
    sess = cluster.session()
    handles = sess.call(cluster.arm_client(0).alloc(count=1))
    ac = cluster.remote(0, handles[0])
    return cluster, sess, ac


class TestPaperSizes:
    def test_default_axis(self):
        sizes = paper_sizes()
        assert sizes[0] == KiB
        assert sizes[-1] == 64 * MiB
        assert all(b // a == 4 for a, b in zip(sizes, sizes[1:]))

    def test_custom_step(self):
        sizes = paper_sizes(step=16)
        assert all(b // a == 16 for a, b in zip(sizes, sizes[1:]))


class TestBandwidthSweep:
    def test_points_monotone_bandwidth(self, rig):
        cluster, sess, ac = rig
        points = sess.call(sweep(cluster.engine, ac,
                                 [64 * KiB, MiB, 16 * MiB], "h2d"))
        bws = [p.mib_per_s for p in points]
        assert bws == sorted(bws)

    def test_d2h_direction(self, rig):
        cluster, sess, ac = rig
        points = sess.call(sweep(cluster.engine, ac, [MiB], "d2h"))
        assert 0 < points[0].mib_per_s < 2660

    def test_invalid_direction(self, rig):
        cluster, sess, ac = rig
        gen = sweep(cluster.engine, ac, [MiB], "sideways")
        with pytest.raises(ValueError, match="direction"):
            next(iter(gen))

    def test_repeats_average(self, rig):
        cluster, sess, ac = rig
        p1 = sess.call(sweep(cluster.engine, ac, [MiB], "h2d", repeats=1))
        p3 = sess.call(sweep(cluster.engine, ac, [MiB], "h2d", repeats=3))
        # Deterministic simulation: the average equals a single run.
        assert p1[0].mib_per_s == pytest.approx(p3[0].mib_per_s, rel=1e-6)

    def test_memory_released(self, rig):
        cluster, sess, ac = rig
        sess.call(sweep(cluster.engine, ac, [MiB, 4 * MiB], "h2d"))
        gpu = cluster.accelerator_for_handle(ac.handle).gpu
        assert gpu.memory.used_bytes == 0

    def test_point_properties(self):
        p = BandwidthPoint(nbytes=MiB, seconds=0.001)
        assert p.bytes_per_s == pytest.approx(MiB / 0.001)
        assert p.mib_per_s == pytest.approx(1000.0)


class TestPingPong:
    def test_bandwidth_approaches_model_peak(self):
        cluster = Cluster(paper_testbed(n_compute=2, n_accelerators=0))
        points = run_pingpong(cluster.engine, cluster.comm, 0, 1,
                              [64 * MiB])
        measured = points[0].bytes_per_s
        assert measured == pytest.approx(
            IB_QDR_MPI.effective_bandwidth(64 * MiB), rel=0.05)

    def test_curve_is_monotone(self):
        cluster = Cluster(paper_testbed(n_compute=2, n_accelerators=0))
        points = run_pingpong(cluster.engine, cluster.comm, 0, 1,
                              [KiB, 64 * KiB, MiB, 16 * MiB])
        bws = [p.mib_per_s for p in points]
        assert bws == sorted(bws)

    def test_small_message_latency_bound(self):
        cluster = Cluster(paper_testbed(n_compute=2, n_accelerators=0))
        points = run_pingpong(cluster.engine, cluster.comm, 0, 1, [1])
        # Half RTT of a 1-byte message ~= latency + overheads, i.e. ~2 us.
        assert 1e-6 < points[0].half_rtt < 5e-6
