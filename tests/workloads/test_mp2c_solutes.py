"""Tests for the coupled MD-solute + SRD-solvent simulation."""

import numpy as np
import pytest

from repro.cluster import Cluster, paper_testbed
from repro.errors import WorkloadError
from repro.workloads.mp2c import (
    MP2CConfig,
    kinetic_energy,
    momentum,
    run_mp2c,
    thermal_velocities,
)
from repro.workloads.mp2c.md import lj_forces, lj_forces_on_local


def setup(n_ranks):
    cluster = Cluster(paper_testbed(n_compute=n_ranks, n_accelerators=n_ranks))
    sess = cluster.session()
    acs = []
    for i in range(n_ranks):
        handles = sess.call(cluster.arm_client(i).alloc(count=1))
        acs.append(cluster.remote(i, handles[0]))
    ranks = [cluster.compute_rank(i) for i in range(n_ranks)]
    return cluster, sess, ranks, acs


def make_state(cfg, n_ranks, n_solutes_per_rank, seed=0):
    """Solvent + well-separated solutes inside each rank's slab."""
    rng = np.random.default_rng(seed)
    edge_cells = cfg.box_edge_cells()
    cells_x = edge_cells + (n_ranks - edge_cells % n_ranks) % n_ranks
    box = np.array([cells_x * cfg.cell_size,
                    edge_cells * cfg.cell_size,
                    edge_cells * cfg.cell_size])
    slab = box[0] / n_ranks
    solvent, solutes = [], []
    per_rank = cfg.n_particles // n_ranks
    for r in range(n_ranks):
        pos = rng.uniform(0, 1, (per_rank, 3)) * np.array(
            [slab, box[1], box[2]])
        pos[:, 0] += r * slab
        solvent.append((pos, thermal_velocities(rng, per_rank)))
        # Solutes on a loose grid to avoid violent initial LJ overlaps.
        spos = rng.uniform(0.15, 0.85, (n_solutes_per_rank, 3)) * np.array(
            [slab, box[1], box[2]])
        spos[:, 0] += r * slab
        # Enforce pairwise separation by rejection.
        for i in range(1, n_solutes_per_rank):
            for _ in range(200):
                d = spos[:i] - spos[i]
                if np.all(np.sum(d * d, axis=1) > 1.4):
                    break
                spos[i] = rng.uniform(0.15, 0.85, 3) * np.array(
                    [slab, box[1], box[2]])
                spos[i, 0] += r * slab
        svel = thermal_velocities(rng, n_solutes_per_rank) * 0.3
        solutes.append((spos, svel))
    return solvent, solutes


class TestLjForcesOnLocal:
    def test_matches_full_lj_for_self_interaction(self):
        rng = np.random.default_rng(1)
        box = np.array([12.0, 12.0, 12.0])
        pos = rng.uniform(0, 12, (30, 3))
        full, _ = lj_forces(pos, box, rcut=2.5)
        local = lj_forces_on_local(pos, pos, box, rcut=2.5, skip_self=True)
        np.testing.assert_allclose(local, full, atol=1e-9)

    def test_halo_split_equals_combined(self):
        rng = np.random.default_rng(2)
        box = np.array([12.0, 12.0, 12.0])
        a = rng.uniform(0, 12, (15, 3))
        b = rng.uniform(0, 12, (10, 3))
        both = np.concatenate([a, b])
        f_combined = lj_forces_on_local(both, both, box, skip_self=True)[:15]
        f_split = (lj_forces_on_local(a, a, box, skip_self=True)
                   + lj_forces_on_local(a, b, box))
        np.testing.assert_allclose(f_split, f_combined, atol=1e-9)

    def test_empty_inputs(self):
        box = np.array([10.0, 10.0, 10.0])
        assert lj_forces_on_local(np.zeros((0, 3)), np.zeros((5, 3)),
                                  box).shape == (0, 3)
        np.testing.assert_array_equal(
            lj_forces_on_local(np.zeros((2, 3)) + 5, np.zeros((0, 3)), box),
            np.zeros((2, 3)))


class TestCoupledRuns:
    CFG = dict(n_particles=2000, steps=10, srd_every=5, dt=0.005)

    def test_counts_conserved_with_solutes(self):
        cfg = MP2CConfig(**self.CFG)
        cluster, sess, ranks, acs = setup(2)
        solvent, solutes = make_state(cfg, 2, n_solutes_per_rank=12)
        res = sess.call(run_mp2c(cluster.engine, cluster.compute_nodes[0].cpu,
                                 ranks, acs, cfg, initial=solvent,
                                 solutes=solutes))
        n_solv = sum(p.shape[0] for p, _, _, _ in res.final)
        n_sol = sum(sp.shape[0] for _, _, sp, _ in res.final)
        assert n_solv == 2000
        assert n_sol == 24

    def test_momentum_conserved_with_solutes(self):
        cfg = MP2CConfig(**self.CFG)
        cluster, sess, ranks, acs = setup(2)
        solvent, solutes = make_state(cfg, 2, n_solutes_per_rank=10, seed=3)
        p0 = (sum(momentum(v) for _, v in solvent)
              + sum(momentum(v) for _, v in solutes))
        res = sess.call(run_mp2c(cluster.engine, cluster.compute_nodes[0].cpu,
                                 ranks, acs, cfg, initial=solvent,
                                 solutes=solutes))
        p1 = (sum(momentum(v) for _, v, _, _ in res.final)
              + sum(momentum(sv) for _, _, _, sv in res.final))
        np.testing.assert_allclose(p1, p0, atol=1e-7)

    def test_total_energy_approximately_conserved(self):
        # SRD conserves KE exactly; LJ+Verlet conserves total energy to
        # integration error.  Use a single rank so the global potential is
        # easy to evaluate.
        cfg = MP2CConfig(n_particles=1000, steps=20, srd_every=5, dt=0.004)
        cluster, sess, ranks, acs = setup(1)
        solvent, solutes = make_state(cfg, 1, n_solutes_per_rank=16, seed=4)
        box_edge = cfg.box_edge_cells() * cfg.cell_size
        box = np.array([box_edge] * 3)

        def total_energy(sol_pos, sol_vel, solv_vel):
            _, pot = lj_forces(sol_pos, box, rcut=2.5)
            return kinetic_energy(sol_vel) + kinetic_energy(solv_vel) + pot

        e0 = total_energy(solutes[0][0].copy(), solutes[0][1].copy(),
                          solvent[0][1].copy())
        res = sess.call(run_mp2c(cluster.engine, cluster.compute_nodes[0].cpu,
                                 ranks, acs, cfg, initial=solvent,
                                 solutes=solutes))
        pos, vel, spos, svel = res.final[0]
        e1 = total_energy(spos, svel, vel)
        assert abs(e1 - e0) / abs(e0) < 0.02

    def test_solutes_actually_interact(self):
        # Two solutes placed close must repel.
        cfg = MP2CConfig(n_particles=1000, steps=4, srd_every=100, dt=0.002)
        cluster, sess, ranks, acs = setup(1)
        solvent, _ = make_state(cfg, 1, n_solutes_per_rank=0, seed=5)
        edge = cfg.box_edge_cells() * cfg.cell_size
        spos = np.array([[edge / 2 - 0.5, edge / 2, edge / 2],
                         [edge / 2 + 0.5, edge / 2, edge / 2]])
        svel = np.zeros((2, 3))
        res = sess.call(run_mp2c(cluster.engine, cluster.compute_nodes[0].cpu,
                                 ranks, acs, cfg, initial=solvent,
                                 solutes=[(spos, svel)]))
        _, _, spos1, svel1 = res.final[0]
        gap0 = 1.0
        gap1 = abs(spos1[1, 0] - spos1[0, 0])
        assert gap1 > gap0  # pushed apart
        assert svel1[0, 0] < 0 < svel1[1, 0]

    def test_cross_rank_interaction_through_halo(self):
        # Solutes straddling the slab boundary: each rank owns one; they
        # must repel through the halo exchange.
        cfg = MP2CConfig(n_particles=2000, steps=4, srd_every=100, dt=0.002)
        cluster, sess, ranks, acs = setup(2)
        solvent, _ = make_state(cfg, 2, n_solutes_per_rank=0, seed=6)
        edge_cells = cfg.box_edge_cells()
        cells_x = edge_cells + edge_cells % 2
        slab = cells_x * cfg.cell_size / 2
        mid = cfg.box_edge_cells() * cfg.cell_size / 2
        s0 = (np.array([[slab - 0.5, mid, mid]]), np.zeros((1, 3)))
        s1 = (np.array([[slab + 0.5, mid, mid]]), np.zeros((1, 3)))
        res = sess.call(run_mp2c(cluster.engine, cluster.compute_nodes[0].cpu,
                                 ranks, acs, cfg, initial=solvent,
                                 solutes=[s0, s1]))
        _, _, sp0, sv0 = res.final[0]
        _, _, sp1, sv1 = res.final[1]
        assert sv0[0, 0] < 0  # left solute pushed left
        assert sv1[0, 0] > 0  # right solute pushed right

    def test_solutes_without_initial_rejected(self):
        cfg = MP2CConfig(**self.CFG)
        cluster, sess, ranks, acs = setup(1)
        with pytest.raises(WorkloadError, match="real mode"):
            sess.call(run_mp2c(cluster.engine, cluster.compute_nodes[0].cpu,
                               ranks, acs, cfg,
                               solutes=[(np.zeros((1, 3)), np.zeros((1, 3)))]))

    def test_wrong_solute_bundle_count_rejected(self):
        cfg = MP2CConfig(**self.CFG)
        cluster, sess, ranks, acs = setup(2)
        solvent, solutes = make_state(cfg, 2, n_solutes_per_rank=2)
        with pytest.raises(WorkloadError, match="per rank"):
            sess.call(run_mp2c(cluster.engine, cluster.compute_nodes[0].cpu,
                               ranks, acs, cfg, initial=solvent,
                               solutes=solutes[:1]))
