"""Tests for the QR lookahead optimization."""

import numpy as np
import pytest

from repro.cluster import Cluster, paper_testbed
from repro.workloads.linalg import qr_factorize, reconstruct_q


def remote(g):
    cluster = Cluster(paper_testbed(n_compute=1, n_accelerators=g))
    sess = cluster.session()
    handles = sess.call(cluster.arm_client(0).alloc(count=g))
    acs = [cluster.remote(0, h) for h in handles]
    return cluster, sess, acs


class TestLookaheadCorrectness:
    @pytest.mark.parametrize("g", [1, 2, 3])
    def test_same_factorization_as_plain(self, g):
        n, nb = 96, 32
        A = np.random.default_rng(g + 50).standard_normal((n, n))
        c1, s1, a1 = remote(g)
        plain = s1.call(qr_factorize(c1.engine, c1.compute_nodes[0].cpu,
                                     a1, n, nb, A=A, lookahead=False))
        c2, s2, a2 = remote(g)
        la = s2.call(qr_factorize(c2.engine, c2.compute_nodes[0].cpu,
                                  a2, n, nb, A=A, lookahead=True))
        np.testing.assert_allclose(la.R, plain.R, atol=1e-10)
        Q = reconstruct_q(n, la.reflectors)
        np.testing.assert_allclose(Q @ la.R, A, atol=1e-8)

    def test_non_divisible_n(self):
        n, nb = 70, 32
        A = np.random.default_rng(3).standard_normal((n, n))
        cluster, sess, acs = remote(2)
        res = sess.call(qr_factorize(cluster.engine,
                                     cluster.compute_nodes[0].cpu,
                                     acs, n, nb, A=A, lookahead=True))
        Q = reconstruct_q(n, res.reflectors)
        np.testing.assert_allclose(Q @ res.R, A, atol=1e-8)

    def test_result_records_mode(self):
        cluster, sess, acs = remote(1)
        res = sess.call(qr_factorize(cluster.engine,
                                     cluster.compute_nodes[0].cpu,
                                     acs, 256, 128, lookahead=True))
        assert res.lookahead


class TestLookaheadPerformance:
    def test_lookahead_faster_at_scale(self):
        # Hiding the panel factorization + its round trip behind the
        # trailing updates must shorten the critical path.
        n = 4096
        c1, s1, a1 = remote(2)
        plain = s1.call(qr_factorize(c1.engine, c1.compute_nodes[0].cpu,
                                     a1, n, 128, lookahead=False))
        c2, s2, a2 = remote(2)
        la = s2.call(qr_factorize(c2.engine, c2.compute_nodes[0].cpu,
                                  a2, n, 128, lookahead=True))
        assert la.seconds < plain.seconds * 0.97

    def test_lookahead_never_slower_single_gpu(self):
        n = 2048
        c1, s1, a1 = remote(1)
        plain = s1.call(qr_factorize(c1.engine, c1.compute_nodes[0].cpu,
                                     a1, n, 128, lookahead=False))
        c2, s2, a2 = remote(1)
        la = s2.call(qr_factorize(c2.engine, c2.compute_nodes[0].cpu,
                                  a2, n, 128, lookahead=True))
        assert la.seconds <= plain.seconds * 1.01
