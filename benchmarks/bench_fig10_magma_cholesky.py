"""Figure 10: multi-GPU Cholesky factorization GFlop/s sweep.

Asserts the Cholesky shape and — by also regenerating the QR data — the
paper's cross-figure observation that QR is more bandwidth-sensitive than
Cholesky.
"""

from repro.analysis.experiments import fig09, fig10


def test_fig10_magma_cholesky(benchmark, quick, figure_store):
    fig = benchmark.pedantic(fig10.run, kwargs={"quick": quick},
                             rounds=1, iterations=1)
    qr_fig = fig09.run(quick=True)  # small sweep for the sensitivity compare
    fig10.check(fig, qr_fig=qr_fig)
    figure_store(fig)
