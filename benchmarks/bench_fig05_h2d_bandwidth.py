"""Figure 5: host-to-device bandwidth of the middleware copy protocols.

Regenerates the naive / pipeline-128K / -256K / -512K / adaptive curves
against the MPI PingPong upper bound and asserts the paper's shape: the
pipelines approach the MPI bound, naive plateaus at the serialization
bound, and the 128K->512K block-size crossover sits near 9 MiB.
"""

from repro.analysis.experiments import fig05


def test_fig05_h2d_bandwidth(benchmark, quick, figure_store):
    fig = benchmark.pedantic(fig05.run, kwargs={"quick": quick},
                             rounds=1, iterations=1)
    fig05.check(fig)
    figure_store(fig)
