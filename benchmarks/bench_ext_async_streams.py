"""Extension I: async command streams vs per-op RPC round trips."""

from repro.analysis.experiments import ext_async


def test_ext_async_streams(benchmark, quick, figure_store):
    fig = benchmark.pedantic(ext_async.run, kwargs={"quick": quick},
                             rounds=1, iterations=1)
    ext_async.check(fig)
    figure_store(fig, fmt="{:>12.3f}")
