"""Figure 11: MP2C wall time, CUDA local vs dynamic cluster architecture.

Asserts the paper's claim: the dynamic architecture prolongs execution by
at most 4% for all three particle counts, and absolute runtimes land in
the paper's 10-25 minute range at full scale.
"""

from repro.analysis.experiments import fig11


def test_fig11_mp2c(benchmark, quick, figure_store):
    fig = benchmark.pedantic(fig11.run, kwargs={"quick": quick},
                             rounds=1, iterations=1)
    fig11.check(fig)
    figure_store(fig, fmt="{:>12.2f}")
