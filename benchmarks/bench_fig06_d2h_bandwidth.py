"""Figure 6: device-to-host bandwidth of the middleware copy protocols.

Asserts the paper's D2H finding: pipelines beat naive, and a single
128 KiB block size is (at least tied for) best at every message size.
"""

from repro.analysis.experiments import fig06


def test_fig06_d2h_bandwidth(benchmark, quick, figure_store):
    fig = benchmark.pedantic(fig06.run, kwargs={"quick": quick},
                             rounds=1, iterations=1)
    fig06.check(fig)
    figure_store(fig)
