"""Extension F: the contribution of GPUDirect pinned-buffer sharing."""

from repro.analysis.experiments import ext_gpudirect


def test_ext_gpudirect(benchmark, quick, figure_store):
    fig = benchmark.pedantic(ext_gpudirect.run, kwargs={"quick": quick},
                             rounds=1, iterations=1)
    ext_gpudirect.check(fig)
    figure_store(fig)
