"""Figure 7: H2D bandwidth, node-attached vs network-attached GPU.

Asserts the ordering and peak calibration of the paper's testbed:
local pinned ~5700 MiB/s > local pageable ~4700 > MPI ~2660 >= dynamic
adaptive pipeline (which stays within 10% of the MPI bound).
"""

from repro.analysis.experiments import fig07


def test_fig07_h2d_local_vs_remote(benchmark, quick, figure_store):
    fig = benchmark.pedantic(fig07.run, kwargs={"quick": quick},
                             rounds=1, iterations=1)
    fig07.check(fig)
    figure_store(fig)
