"""Extension E: accelerator failure mid-job — node survival and recovery."""

from repro.analysis.experiments import ext_faults


def test_ext_faults(benchmark, quick, figure_store):
    fig = benchmark.pedantic(ext_faults.run, kwargs={"quick": quick},
                             rounds=1, iterations=1)
    ext_faults.check(fig)
    figure_store(fig, fmt="{:>12.2f}")
