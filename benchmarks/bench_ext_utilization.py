"""Extension C: job-mix utilization, static vs dynamic accelerator pool."""

from repro.analysis.experiments import ext_utilization


def test_ext_utilization(benchmark, quick, figure_store):
    fig = benchmark.pedantic(ext_utilization.run, kwargs={"quick": quick},
                             rounds=1, iterations=1)
    ext_utilization.check(fig)
    figure_store(fig, fmt="{:>12.2f}")
