"""Extension A: MPI/InfiniBand middleware vs rCUDA-style TCP remoting."""

from repro.analysis.experiments import ext_tcp


def test_ext_tcp_vs_mpi(benchmark, quick, figure_store):
    fig = benchmark.pedantic(ext_tcp.run, kwargs={"quick": quick},
                             rounds=1, iterations=1)
    ext_tcp.check(fig)
    figure_store(fig)
