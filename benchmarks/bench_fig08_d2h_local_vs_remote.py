"""Figure 8: D2H bandwidth, node-attached vs network-attached GPU."""

from repro.analysis.experiments import fig08


def test_fig08_d2h_local_vs_remote(benchmark, quick, figure_store):
    fig = benchmark.pedantic(fig08.run, kwargs={"quick": quick},
                             rounds=1, iterations=1)
    fig08.check(fig)
    figure_store(fig)
