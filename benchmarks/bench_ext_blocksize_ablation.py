"""Extension B: pipeline block-size ablation and adaptive-policy optimality."""

from repro.analysis.experiments import ext_blocksize


def test_ext_blocksize_ablation(benchmark, quick, figure_store):
    fig = benchmark.pedantic(ext_blocksize.run, kwargs={"quick": quick},
                             rounds=1, iterations=1)
    ext_blocksize.check(fig)
    figure_store(fig)
