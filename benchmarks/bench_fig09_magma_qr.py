"""Figure 9: multi-GPU QR factorization GFlop/s sweep.

Asserts: one network-attached GPU never beats the node-local GPU, three
network-attached GPUs reach ~2.2x the local GPU at N=10240 (accepted
band 1.7-2.7), and throughput grows with N.
"""

from repro.analysis.experiments import fig09


def test_fig09_magma_qr(benchmark, quick, figure_store):
    fig = benchmark.pedantic(fig09.run, kwargs={"quick": quick},
                             rounds=1, iterations=1)
    fig09.check(fig)
    figure_store(fig)
