"""Extension G: QR panel-lookahead ablation on network-attached GPUs."""

from repro.analysis.experiments import ext_lookahead


def test_ext_lookahead(benchmark, quick, figure_store):
    fig = benchmark.pedantic(ext_lookahead.run, kwargs={"quick": quick},
                             rounds=1, iterations=1)
    ext_lookahead.check(fig)
    figure_store(fig)
