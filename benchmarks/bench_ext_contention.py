"""Extension D: shared-fabric contention vs active accelerator streams."""

from repro.analysis.experiments import ext_contention


def test_ext_contention(benchmark, quick, figure_store):
    fig = benchmark.pedantic(ext_contention.run, kwargs={"quick": quick},
                             rounds=1, iterations=1)
    ext_contention.check(fig)
    figure_store(fig)
