"""Benchmark-harness fixtures.

Every benchmark regenerates one paper figure (or an extension study),
prints its series as an ASCII table, asserts the qualitative shape the
paper reports, and archives the series as JSON under
``benchmarks/results/`` for EXPERIMENTS.md bookkeeping.

Set ``REPRO_BENCH_QUICK=1`` to run coarser sweeps.
"""

import json
import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def quick() -> bool:
    return os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")


@pytest.fixture
def figure_store(capsys):
    """Print a figure and archive it as JSON."""

    def store(fig, fmt="{:>10.1f}"):
        RESULTS_DIR.mkdir(exist_ok=True)
        with open(RESULTS_DIR / f"{fig.fig_id}.json", "w") as fh:
            json.dump(fig.to_dict(), fh, indent=1)
        with capsys.disabled():
            print()
            print(fig.render(fmt))

    return store
