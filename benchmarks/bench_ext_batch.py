"""Extension H: end-to-end mixed batch workload on the live cluster."""

from repro.analysis.experiments import ext_batch


def test_ext_batch(benchmark, quick, figure_store):
    fig = benchmark.pedantic(ext_batch.run, kwargs={"quick": quick},
                             rounds=1, iterations=1)
    ext_batch.check(fig)
    figure_store(fig, fmt="{:>12.3f}")
